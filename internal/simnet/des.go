package simnet

import (
	"container/heap"
	"math"

	"mmx/internal/core"
	"mmx/internal/faults"
)

// event is one scheduled simulation action.
type event struct {
	at  float64
	seq int // tie-break so ordering is deterministic
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a minimal deterministic discrete-event engine.
type Sim struct {
	now float64
	seq int
	q   eventQueue
}

// NewSim returns an engine at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at an absolute time (clamped to now for past times).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.q, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// RunUntil executes events in time order until the queue drains or the
// horizon is reached, and leaves the clock at the horizon.
func (s *Sim) RunUntil(horizon float64) {
	for s.q.Len() > 0 {
		e := s.q[0]
		if e.at > horizon {
			break
		}
		heap.Pop(&s.q)
		s.now = e.at
		e.fn()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// NodeStats accumulates one node's traffic outcome over a run.
type NodeStats struct {
	ID         uint32
	FramesSent int
	// FramesLost counts channel losses (residual bit errors).
	FramesLost int
	// FramesDropped counts queue overflows: the node's adapted PHY rate
	// could not drain the offered load within the backlog bound.
	FramesDropped int
	// FramesOutage counts frames discarded because the node's adapted
	// rate was 0 — no ladder step closes the link — so transmitting
	// would only burn energy.
	FramesOutage   int
	BitsDelivered  float64
	MinSINRdB      float64
	MeanSINRdB     float64
	sinrSamples    int
	sinrAccum      float64
	OutageFraction float64
	outages        int
	// AirtimeFraction is the share of the run the node's transmitter
	// was on the air at its adapted rate.
	AirtimeFraction float64
	airtime         float64
	// MeanDelayS is the average frame latency (queueing + airtime) of
	// transmitted frames.
	MeanDelayS float64
	delayAccum float64
	delayed    int
}

// ControlStats counts the fault-tolerant control plane's work during a
// run: keepalives, lease churn and injected failures. All fields are
// plain counters so two runs can be compared for bit-identity.
type ControlStats struct {
	// RenewsSent counts keepalive cycles attempted by live nodes.
	RenewsSent int
	// RenewsFailed counts cycles where every retry died on the side
	// channel (or failed to rejoin after a nack) — the node kept
	// transmitting on its last-known assignment.
	RenewsFailed int
	// Rejoins counts renew-nacks healed through a full re-handshake.
	Rejoins int
	// Resyncs counts renew-acks whose books disagreed with the node —
	// a lost PromoteMsg or post-restart reallocation the ack repaired.
	Resyncs int
	// LeaseExpiries counts leases the controller reclaimed after their
	// holders fell silent.
	LeaseExpiries int
	// Promotions counts PromoteMsg pushes a live node actually applied.
	Promotions int
	// Crashes, Reboots and APRestarts count executed FaultPlan events.
	Crashes, Reboots, APRestarts int
}

// RunStats summarizes a network run.
type RunStats struct {
	Duration float64
	PerNode  []NodeStats
	// Control summarizes the control plane's fault handling.
	Control ControlStats
}

// TotalGoodputBps returns the aggregate delivered rate.
func (r RunStats) TotalGoodputBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	total := 0.0
	for _, n := range r.PerNode {
		total += n.BitsDelivered
	}
	return total / r.Duration
}

// Run drives the network for duration seconds: blockers walk (re-evaluated
// every envStep), each node's traffic model emits frames, and every frame
// is delivered with probability (1−BER)^bits at the node's instantaneous
// SINR. SINR below outageSINRdB counts as an outage sample.
//
// The control plane runs alongside the data plane: every node renews its
// spectrum lease each Control.RenewIntervalS, the controller expires the
// leases of nodes that fell silent (reclaiming their spectrum through the
// churn-safe promote path), and an installed faults.Plan injects node
// crash/reboot and AP restart events mid-run. Each environment step also
// re-adapts every live node's PHY rate to the fresh interference picture,
// so a blockage-driven SINR collapse downshifts the ladder in-run — or
// marks the node in outage (rate 0) until the blocker clears. Everything
// is driven by seeded RNGs, so a run is a pure function of (seed,
// SideChannel seed, Plan).
//
// Run indexes nodes and their report slots from the node list captured at
// start, so membership churn mid-run would silently misattribute traffic
// and stats. Join and Leave therefore panic while Run executes (including
// from traffic-model callbacks); drive churn between runs — spectrum
// state carries over. MoveNode and blocker motion remain safe: they
// change link geometry, not membership. FaultPlan crash/reboot is not
// churn: the node stays in the list, only its Down flag flips.
func (nw *Network) Run(duration, envStep, outageSINRdB float64) RunStats {
	if nw.running {
		panic("simnet: Run is not reentrant")
	}
	nw.running = true
	defer func() { nw.running = false }()
	sim := NewSim()
	// The controller's monotonic clock may already sit past zero (lossy
	// pre-run handshakes consume virtual time), while sim restarts at
	// zero every Run: anchor lease timing to the controller's now.
	base := nw.Controller.NowS()
	ctrlNow := func() float64 { return base + sim.Now() }
	nw.Controller.LeaseTTL = nw.Control.LeaseTTLS
	var ctl ControlStats
	stats := make([]NodeStats, len(nw.Nodes))
	index := make(map[uint32]int, len(nw.Nodes))
	for i, n := range nw.Nodes {
		stats[i] = NodeStats{ID: n.ID, MinSINRdB: math.Inf(1)}
		index[n.ID] = i
	}

	// Cached per-node reports, refreshed on every environment step and
	// after control-plane events that change assignments.
	reports := nw.EvaluateSINR()
	refresh := func() { reports = nw.EvaluateSINR() }
	observe := func() {
		for i, r := range reports {
			if nw.Nodes[i].Down {
				continue // a dead radio has no SINR to sample
			}
			st := &stats[i]
			st.sinrAccum += r.SINRdB
			st.sinrSamples++
			if r.SINRdB < st.MinSINRdB {
				st.MinSINRdB = r.SINRdB
			}
			if r.SINRdB < outageSINRdB {
				st.outages++
			}
		}
	}
	observe()

	var envTick func()
	envTick = func() {
		nw.Env.Step(envStep)
		refresh()
		// In-run rate adaptation: the reports hold each node's SINR in
		// its configured channel bandwidth, exactly what the ladder walk
		// wants. Rate 0 = outage until a later step clears it.
		for i, n := range nw.Nodes {
			if n.Down {
				continue
			}
			n.RateBps = nw.cappedRate(n, core.RateForSNR(reports[i].SINRdB, n.Link.Cfg.BandwidthHz, 1e-6))
		}
		observe()
		sim.After(envStep, envTick)
	}
	if envStep > 0 {
		sim.After(envStep, envTick)
	}

	// Scheduled fault injection.
	if nw.Faults != nil {
		for _, fe := range nw.Faults.Sorted() {
			fe := fe
			switch fe.Kind {
			case faults.NodeCrash:
				sim.At(fe.At, func() {
					if i, ok := index[fe.NodeID]; ok && !nw.Nodes[i].Down {
						nw.Nodes[i].Down = true
						ctl.Crashes++
						refresh()
					}
				})
			case faults.NodeReboot:
				sim.At(fe.At, func() {
					i, ok := index[fe.NodeID]
					if !ok || !nw.Nodes[i].Down {
						return
					}
					n := nw.Nodes[i]
					ctl.Reboots++
					// Rejoin through the full lossy handshake; if its
					// old lease survived, the AP idempotently re-grants
					// the same spectrum. A handshake that dies entirely
					// leaves the node down until the plan retries.
					if _, err := nw.handshake(n, ctrlNow()); err != nil {
						return
					}
					n.Down = false
					nw.applyAssignment(n)
					nw.invalidateCoupling()
					refresh()
				})
			case faults.APRestart:
				sim.At(fe.At, func() {
					nw.apDown = true
					ctl.APRestarts++
				})
				sim.At(fe.At+fe.DownFor, func() {
					// The AP returns with empty volatile books; nodes
					// keep transmitting on last-known assignments and
					// re-sync via renew-nack → rejoin.
					nw.apDown = false
					nw.Controller.Restart()
				})
			}
		}
	}

	// Lease keepalive cycle: renew the living, then expire the silent.
	// Renewing first matters: pre-run lossy handshakes consume virtual
	// controller time, so an early joiner's last contact can already be
	// older than the TTL when Run starts — its first renew must land
	// before the expiry check, not after.
	var renewTick func()
	renewTick = func() {
		changed := false
		for _, n := range nw.Nodes {
			if n.Down {
				continue
			}
			ctl.RenewsSent++
			switch nw.renewOnce(n, ctrlNow()) {
			case renewResynced:
				ctl.Resyncs++
				changed = true
			case renewRejoined:
				ctl.Rejoins++
				changed = true
			case renewLost, renewFailed:
				ctl.RenewsFailed++
			}
		}
		expired := nw.Controller.ExpireLeases(ctrlNow())
		ctl.LeaseExpiries += len(expired)
		if len(expired) > 0 {
			// Reclaimed spectrum may promote surviving sharers; the
			// pushes ride the same lossy side channel, and a lost one
			// is repaired by the promoted node's next renew ack.
			ctl.Promotions += nw.pushNotifications(false)
			changed = true
		}
		if changed {
			refresh()
		}
		sim.After(nw.Control.RenewIntervalS, renewTick)
	}
	if nw.Control.RenewIntervalS > 0 {
		sim.After(nw.Control.RenewIntervalS, renewTick)
	}

	// Per-node transmitter occupancy for airtime/queueing accounting.
	const maxBacklogS = 0.05 // frames older than this are dropped
	busyUntil := make([]float64, len(nw.Nodes))

	var scheduleFrame func(n *Node)
	scheduleFrame = func(n *Node) {
		delay, payload := n.Traffic.Next(nw.rng)
		sim.After(delay, func() {
			i := index[n.ID]
			if payload > 0 && !n.Down {
				bits := float64(8 * payload)
				rate := n.RateBps
				stats[i].FramesSent++
				if rate <= 0 {
					// Outage: no ladder step closes the link, so the
					// frame is discarded instead of transmitted at a
					// hopeless rate.
					stats[i].FramesOutage++
				} else {
					airtime := bits / rate
					now := sim.Now()
					if busyUntil[i] < now {
						busyUntil[i] = now
					}
					queue := busyUntil[i] - now
					if queue > maxBacklogS {
						// The adapted rate cannot drain the offered load.
						stats[i].FramesDropped++
					} else {
						busyUntil[i] += airtime
						stats[i].airtime += airtime
						stats[i].delayAccum += queue + airtime
						stats[i].delayed++
						ber := reports[i].BER
						pSuccess := math.Pow(1-ber, bits)
						if nw.rng.Float64() < pSuccess {
							stats[i].BitsDelivered += bits
						} else {
							stats[i].FramesLost++
						}
					}
				}
			}
			scheduleFrame(n)
		})
	}
	for _, n := range nw.Nodes {
		scheduleFrame(n)
	}

	sim.RunUntil(duration)

	for i := range stats {
		if stats[i].sinrSamples > 0 {
			stats[i].MeanSINRdB = stats[i].sinrAccum / float64(stats[i].sinrSamples)
			stats[i].OutageFraction = float64(stats[i].outages) / float64(stats[i].sinrSamples)
		}
		if duration > 0 {
			stats[i].AirtimeFraction = stats[i].airtime / duration
		}
		if stats[i].delayed > 0 {
			stats[i].MeanDelayS = stats[i].delayAccum / float64(stats[i].delayed)
		}
	}
	return RunStats{Duration: duration, PerNode: stats, Control: ctl}
}
