package dsp

import (
	"math/cmplx"
	"testing"
)

// TestFilterOverlapSaveMatchesDirect pins the overlap-save path to the
// direct convolution across tap counts above the crossover and input
// lengths that exercise partial first/last blocks.
func TestFilterOverlapSaveMatchesDirect(t *testing.T) {
	for _, taps := range []int{65, 129, 257} {
		lp := LowPass(0.1, 1, taps)
		for _, n := range []int{2 * taps, 1000, 4096, 8191} {
			x := randComplex(n, uint64(taps*n))
			got := lp.FilterInto(nil, x)
			want := make([]complex128, n)
			lp.filterDirect(want, x)
			for i := range want {
				if d := cmplx.Abs(got[i] - want[i]); d > 1e-9 {
					t.Fatalf("taps=%d n=%d: OLS deviates from direct at %d by %.3g", taps, n, i, d)
				}
			}
		}
	}
}

// TestFilterShortInputStaysDirect: inputs below the 2×taps threshold take
// the direct path and still produce the exact streaming convolution.
func TestFilterShortInputStaysDirect(t *testing.T) {
	lp := LowPass(0.1, 1, 129)
	x := randComplex(200, 3)
	got := lp.FilterInto(nil, x)
	want := make([]complex128, len(x))
	lp.filterDirect(want, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("short input should convolve directly (mismatch at %d)", i)
		}
	}
}

func TestFilterIntoRejectsAliasedDst(t *testing.T) {
	lp := LowPass(0.1, 1, 31)
	arr := make([]complex128, 600)
	x := arr[:256]
	// dst = x itself, and a capacity-sufficient window offset into x's
	// backing array. (An aliasing dst with cap < len(x) is reallocated,
	// not reused, so it cannot corrupt and is not rejected.)
	for _, alias := range [][]complex128{x, arr[100:100:600]} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("aliasing dst must panic")
				}
			}()
			lp.FilterInto(alias, x)
		}()
	}
	// Disjoint halves of one array do not alias.
	backing := make([]complex128, 512)
	lp.FilterInto(backing[:0:256], backing[256:])
}

// TestFilterOLSWarmAllocationFree: once the tap response is cached and dst
// is sized, overlap-save filtering allocates nothing.
func TestFilterOLSWarmAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	lp := LowPass(0.1, 1, 129)
	x := randComplex(4096, 11)
	dst := lp.FilterInto(nil, x)
	allocs := testing.AllocsPerRun(20, func() {
		dst = lp.FilterInto(dst, x)
	})
	if allocs != 0 {
		t.Errorf("allocs/op = %v, want 0", allocs)
	}
}

// TestFilterOLSConcurrentUse: a shared FIR may filter from many
// goroutines; the lazily built response is constructed exactly once and
// the block scratch is per-call. Run under -race in CI.
func TestFilterOLSConcurrentUse(t *testing.T) {
	lp := LowPass(0.1, 1, 129)
	x := randComplex(2048, 5)
	want := make([]complex128, len(x))
	lp.filterDirect(want, x)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			y := lp.FilterInto(nil, x)
			for i := range want {
				if cmplx.Abs(y[i]-want[i]) > 1e-9 {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("concurrent OLS result deviates from direct")

type errorString string

func (e errorString) Error() string { return string(e) }
