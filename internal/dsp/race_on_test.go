//go:build race

package dsp

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
