GO ?= go

# Benchmarks gated by the perf-regression harness: the end-to-end frame
# roundtrip, the network SINR engine, and the Fig. 11 BER CDF (the
# Monte Carlo fan-out hot path). The AP wideband demux (polyphase
# filterbank vs legacy per-channel loop) is gated separately so its
# baseline can be refreshed without touching the PHY numbers.
BENCH_PATTERN  ?= OTAMFrameRoundtrip|NetworkSINREvaluation|Fig11BERCDF
BENCH_BASELINE ?= BENCH_phy.json
BENCH_AP_PATTERN  ?= APWidebandDemux
BENCH_AP_BASELINE ?= BENCH_ap.json
BENCH_OUT      ?= bench.out

.PHONY: build test bench bench-baseline bench-check profile clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the gated PHY benchmarks and refreshes $(BENCH_BASELINE) with
# the measured numbers. Commit the refreshed file only from the CI runner
# class (ns/op is machine-dependent; allocs/op is not).
bench: bench-baseline

bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . > $(BENCH_OUT)
	$(GO) run ./cmd/mmx-benchstat -emit -o $(BENCH_BASELINE) < $(BENCH_OUT)
	$(GO) test -run '^$$' -bench '$(BENCH_AP_PATTERN)' -benchmem . > $(BENCH_OUT)
	$(GO) run ./cmd/mmx-benchstat -emit -o $(BENCH_AP_BASELINE) < $(BENCH_OUT)
	@rm -f $(BENCH_OUT)
	@echo "wrote $(BENCH_BASELINE) $(BENCH_AP_BASELINE)"

# bench-check reruns the gated benchmarks and fails on >15% ns/op
# regression or any allocs/op increase against the committed baselines.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . > $(BENCH_OUT)
	$(GO) run ./cmd/mmx-benchstat -check -baseline $(BENCH_BASELINE) < $(BENCH_OUT)
	$(GO) test -run '^$$' -bench '$(BENCH_AP_PATTERN)' -benchmem . > $(BENCH_OUT)
	$(GO) run ./cmd/mmx-benchstat -check -baseline $(BENCH_AP_BASELINE) < $(BENCH_OUT)
	@rm -f $(BENCH_OUT)

# profile runs a representative simulation under the pprof CPU and heap
# profilers; inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/mmx-sim -nodes 12 -duration 2 -blockers 2 \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "profiles: cpu.pprof mem.pprof (go tool pprof <file>)"

clean:
	rm -f $(BENCH_OUT) cpu.pprof mem.pprof
