package netctl

import (
	"errors"
	"fmt"
	"time"

	"mmx/internal/faults"
	"mmx/internal/mac"
	"mmx/internal/stats"
)

// Client is the node-side control-plane endpoint over a real transport:
// the retry state machine the simulator validated under seeded fault
// injection (timeout, capped exponential backoff with jitter, reply
// matching by (node, seq), renew keepalives, resync-from-RenewAck,
// rejoin-on-nack), ported onto sockets. One difference from the
// simulated node is deliberate: a real node has no network-layer view
// of the other sharers' angles, so on an SDM reject it confirms the
// AP's nominal host channel instead of re-placing itself via TMA
// suppression — the AP's books and the node agree either way, which is
// all the protocol requires.
//
// A Client is not safe for concurrent use; the load generator runs one
// goroutine per client.
type Client struct {
	NodeID    uint32
	DemandBps float64
	T         Transport
	// Retry paces the per-exchange attempts. The zero value is replaced
	// by DefaultRetrier at first use.
	Retry Retrier

	// Assignment mirrors the AP's grant; Shared and Harmonic describe
	// SDM placement. Joined is false before the first successful
	// handshake and after a Release (or a rejoin that died).
	Assignment mac.Assignment
	Shared     bool
	Harmonic   int8
	Joined     bool

	// Counters for the storm report.
	Sheds, Rejoins, Resyncs, Promotes int

	rng *stats.RNG
	seq uint32
}

// ErrJoinFailed reports a handshake whose every attempt died.
var ErrJoinFailed = errors.New("netctl: join failed")

// errNoReply tags exchanges that decoded nothing useful.
var errUnexpectedReply = errors.New("netctl: unexpected reply type")

// DefaultRetrier is the socket-side timing: 100 ms reply timeout, 8
// attempts with 50 ms → 2 s doubling backoff at ±25% jitter, sleeping
// real time between attempts.
func DefaultRetrier() Retrier {
	return Retrier{
		TimeoutS:    0.1,
		MaxAttempts: 8,
		Backoff:     faults.Backoff{BaseS: 0.05, MaxS: 2, Factor: 2, Jitter: 0.25},
		Sleep:       func(s float64) { time.Sleep(secondsToDuration(s)) },
	}
}

// NewClient builds a client for one node over t. seed feeds the backoff
// jitter, so a fleet of clients desynchronizes deterministically.
func NewClient(nodeID uint32, demandBps float64, t Transport, seed uint64) *Client {
	return &Client{
		NodeID:    nodeID,
		DemandBps: demandBps,
		T:         t,
		Retry:     DefaultRetrier(),
		rng:       stats.NewRNG(seed ^ uint64(nodeID)*0x9E3779B97F4A7C15),
	}
}

// IsShedReply reports whether a RejectMsg is the daemon's overload shed
// sentinel rather than a real SDM fallback: a genuine reject always
// names a host channel (centers sit in the GHz range), so ShareHz==0
// with Harmonic==0 is out-of-band. A shed client backs off and retries
// instead of wrongly entering SDM mode.
func IsShedReply(m mac.RejectMsg) bool { return m.ShareHz == 0 && m.Harmonic == 0 }

// ShedReply builds the overload sentinel the daemon sends when its
// ingress queue is full — an explicit "try later" instead of a silent
// drop, so a shed client stops burning its timeout budget immediately.
func ShedReply(node, seq uint32) mac.RejectMsg {
	return mac.RejectMsg{NodeID: node, Seq: seq}
}

// exchange runs one request through the retry machine: send, collect
// frames until one is the matching reply, back off and resend on
// timeout or shed. Unsolicited PromoteMsg pushes that arrive while
// waiting are applied on the spot; garbled frames and stale replies are
// discarded, mirroring the simulator's exchange.
func (c *Client) exchange(req any) (any, float64, error) {
	raw, err := mac.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	node, seq, _ := mac.RequestIdent(req)
	r := c.Retry
	if r.MaxAttempts == 0 {
		r = DefaultRetrier()
	}
	return r.Do(c.rng, func(_ int, _ float64) (any, float64, bool) {
		start := time.Now()
		took := func() float64 { return time.Since(start).Seconds() }
		if err := c.T.Send(raw); err != nil {
			return nil, took(), false
		}
		for {
			remain := r.TimeoutS - took()
			if remain <= 0 {
				return nil, took(), false
			}
			frame, ok := c.T.Recv(remain)
			if !ok {
				return nil, took(), false
			}
			msg, err := mac.Unmarshal(frame)
			if err != nil {
				continue // garbled on the air
			}
			if p, ok := msg.(mac.PromoteMsg); ok {
				if p.NodeID == c.NodeID {
					c.applyPromote(p)
				}
				continue
			}
			rn, rs, ok := mac.ReplyIdent(msg)
			if !ok || rn != node || rs != seq {
				continue // stale or misaddressed
			}
			if rej, ok := msg.(mac.RejectMsg); ok && IsShedReply(rej) {
				c.Sheds++
				return nil, took(), false // AP overloaded: back off
			}
			return msg, took(), true
		}
	})
}

// applyPromote adopts an unsolicited promotion: the node now exclusively
// owns (part of) the channel it was sharing.
func (c *Client) applyPromote(p mac.PromoteMsg) {
	c.Shared = false
	c.Harmonic = 0
	c.Assignment = mac.Assignment{
		NodeID: p.NodeID, CenterHz: p.CenterHz,
		WidthHz: p.WidthHz, FSKOffsetHz: p.FSKOffsetHz,
	}
	c.Promotes++
}

// Join runs the full handshake: JoinRequest with retries, and — when
// rejected into SDM — a ShareConfirm reporting the settled placement.
// It returns the real time the handshake took.
func (c *Client) Join() (float64, error) {
	c.seq++
	reply, took, err := c.exchange(mac.JoinRequest{NodeID: c.NodeID, Seq: c.seq, DemandBps: c.DemandBps})
	if err != nil {
		return took, fmt.Errorf("%w: %v", ErrJoinFailed, err)
	}
	switch m := reply.(type) {
	case mac.AssignmentMsg:
		c.Shared = false
		c.Harmonic = 0
		c.Assignment = mac.Assignment{
			NodeID: c.NodeID, CenterHz: m.CenterHz, WidthHz: m.WidthHz, FSKOffsetHz: m.FSKOffsetHz,
		}
	case mac.RejectMsg:
		width := mac.BandwidthForRate(c.DemandBps)
		c.Shared = true
		c.Harmonic = m.Harmonic
		c.Assignment = mac.Assignment{
			NodeID: c.NodeID, CenterHz: m.ShareHz, WidthHz: width, FSKOffsetHz: width * 0.05,
		}
		c.seq++
		confirm := mac.ShareConfirmMsg{
			NodeID:   c.NodeID,
			Seq:      c.seq,
			ShareHz:  c.Assignment.CenterHz,
			WidthHz:  c.Assignment.WidthHz,
			Harmonic: c.Harmonic,
		}
		reply2, t2, err := c.exchange(confirm)
		took += t2
		if err != nil {
			// The AP never heard the confirm; operate on the placement
			// anyway and let the next renew heal the books.
			return took, fmt.Errorf("%w: share confirm: %v", ErrJoinFailed, err)
		}
		if _, ok := reply2.(mac.AckMsg); !ok {
			return took, fmt.Errorf("%w: share confirm answered by %T", ErrJoinFailed, reply2)
		}
	default:
		return took, fmt.Errorf("%w: join answered by %T: %v", ErrJoinFailed, reply, errUnexpectedReply)
	}
	c.Joined = true
	return took, nil
}

// RenewOutcome tags what a keepalive cycle did.
type RenewOutcome uint8

// Keepalive outcomes, mirroring the simulator's renew cycle.
const (
	// RenewOK: the lease is live and the books agree.
	RenewOK RenewOutcome = iota
	// RenewResynced: the lease is live but the AP's books differed (a
	// lost promote, or a post-restart reallocation); the node adopted
	// the AP's view.
	RenewResynced
	// RenewRejoined: the lease was gone (expired, or the AP restarted);
	// the node rejoined through the full handshake.
	RenewRejoined
	// RenewLost: the lease was gone and the rejoin also failed; the
	// node is off the books.
	RenewLost
	// RenewFailed: no reply at all; the node keeps transmitting on its
	// last-known assignment until the next keepalive (graceful
	// degradation).
	RenewFailed
)

// Renew runs one lease keepalive and returns the outcome and the real
// time the exchange took (including a rejoin handshake if one ran).
func (c *Client) Renew() (RenewOutcome, float64, error) {
	c.seq++
	reply, took, err := c.exchange(mac.RenewMsg{NodeID: c.NodeID, Seq: c.seq})
	if err != nil {
		return RenewFailed, took, err
	}
	switch m := reply.(type) {
	case mac.RenewAckMsg:
		if m.Shared == c.Shared &&
			m.CenterHz == c.Assignment.CenterHz &&
			m.WidthHz == c.Assignment.WidthHz {
			return RenewOK, took, nil
		}
		c.Shared = m.Shared
		c.Harmonic = m.Harmonic
		c.Assignment = mac.Assignment{
			NodeID: c.NodeID, CenterHz: m.CenterHz, WidthHz: m.WidthHz, FSKOffsetHz: m.FSKOffsetHz,
		}
		c.Resyncs++
		return RenewResynced, took, nil
	case mac.RenewNackMsg:
		c.Joined = false
		t2, err := c.Join()
		took += t2
		if err != nil {
			return RenewLost, took, err
		}
		c.Rejoins++
		return RenewRejoined, took, nil
	default:
		return RenewFailed, took, fmt.Errorf("renew answered by %T: %w", reply, errUnexpectedReply)
	}
}

// Release returns the node's spectrum and clears its local books. The
// AP acks a release even for a node it no longer knows, so a release
// only fails when the daemon is unreachable for the whole retry budget
// — the lease TTL then reclaims the spectrum server-side.
func (c *Client) Release() (float64, error) {
	c.seq++
	reply, took, err := c.exchange(mac.ReleaseMsg{NodeID: c.NodeID, Seq: c.seq})
	if err != nil {
		return took, err
	}
	if _, ok := reply.(mac.AckMsg); !ok {
		return took, fmt.Errorf("release answered by %T: %w", reply, errUnexpectedReply)
	}
	c.Joined = false
	c.Shared = false
	c.Assignment = mac.Assignment{}
	return took, nil
}

// Close releases the client's transport endpoint.
func (c *Client) Close() error { return c.T.Close() }
