// Package core implements the paper's primary contribution: the OTAM
// (Over-The-Air Modulation) link between an mmX IoT node and the access
// point. A node never modulates its carrier in the classical sense —
// it routes a pure VCO tone through one of two orthogonal fixed beams per
// bit, and the differing path losses of the two beams impose ASK at the
// AP, while a small per-beam VCO frequency offset adds the FSK dimension
// (joint ASK-FSK, §6.3). The package composes the channel model, antenna
// patterns, RF component models, and modem into end-to-end link
// evaluation (SNR/BER at any pose, the data behind Figs. 10–12) and
// waveform-level packet transmission.
package core

import (
	"math"
	"math/cmplx"

	"mmx/internal/antenna"
	"mmx/internal/channel"
	"mmx/internal/modem"
	"mmx/internal/rf"
	"mmx/internal/units"
)

// LinkConfig holds the link-budget and air-interface parameters shared by
// every mmX link.
type LinkConfig struct {
	// TxPowerDBm is the VCO's conducted output power (12 dBm for the
	// HMC533; the switch's insertion loss brings the radiated power to
	// the paper's 10 dBm).
	TxPowerDBm float64
	// BandwidthHz is the receiver's demodulation bandwidth (25 MHz: the
	// per-node sub-band the prototype's USRP captures, §9.5).
	BandwidthHz float64
	// NoiseFigureDB is the AP front end's cascade noise figure.
	NoiseFigureDB float64
	// ImplementationLossDB lumps every non-modelled impairment —
	// envelope-detector loss, CFO, phase noise, polarization mismatch,
	// indoor clutter beyond the image-method walls — into one margin.
	// Its default (22 dB) is calibrated so the simulated Fig. 12 matches
	// the paper's anchors (≈40 dB at 1 m, ≥15 dB at 18 m facing).
	ImplementationLossDB float64
	// Modem is the baseband numerology (symbol rate, FSK tones).
	Modem modem.Config
	// ASKExtinction is the residual carrier amplitude (relative) a
	// conventional fixed-beam ASK transmitter emits for bit 0 (finite
	// on/off ratio). OTAM does not use it.
	ASKExtinction float64
}

// DefaultLinkConfig returns the calibrated configuration used by all
// experiments.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		TxPowerDBm:           12,
		BandwidthHz:          25e6,
		NoiseFigureDB:        rf.APFrontEndNoiseFigureDB(),
		ImplementationLossDB: 22,
		Modem:                modem.DefaultConfig(),
		ASKExtinction:        0.1,
	}
}

// NoisePowerW returns the receiver noise power in watts implied by the
// bandwidth and noise figure.
func (c LinkConfig) NoisePowerW() float64 {
	return units.ThermalNoisePower(c.BandwidthHz) * units.FromDB(c.NoiseFigureDB)
}

// Link is one node→AP connection embedded in a propagation environment.
type Link struct {
	Env *channel.Environment
	// Node is the IoT node's pose (boresight = Beam 1 peak direction).
	Node channel.Pose
	// AP is the access point's pose.
	AP channel.Pose
	// Beams are the node's two orthogonal transmit patterns.
	Beams antenna.NodeBeams
	// APPattern is the AP's receive antenna.
	APPattern antenna.Pattern
	// Switch models the SPDT routing the carrier between beams.
	Switch *rf.SPDTSwitch
	Cfg    LinkConfig

	// Waveform-path scratch, lazily initialized and reused across calls.
	// Link evaluation (Evaluate/EvaluateWithClass) never touches these and
	// stays safe to call concurrently; the waveform methods
	// (TransmitOTAM/TransmitFixedBeam/Receive/MeasureBER) are not safe for
	// concurrent use on one Link.
	txBits   []bool
	vcoModel *rf.VCO
	demod    *modem.Demodulator
	demodCfg modem.Config
}

// NewLink wires a link with the standard mmX hardware models.
func NewLink(env *channel.Environment, node, ap channel.Pose) *Link {
	return &Link{
		Env:       env,
		Node:      node,
		AP:        ap,
		Beams:     antenna.NewNodeBeams(),
		APPattern: antenna.NewAPAntenna(),
		Switch:    rf.NewADRF5020(),
		Cfg:       DefaultLinkConfig(),
	}
}

// Evaluation is the link budget at one instant: the two beams' effective
// channel responses and the derived SNR/BER figures for operation with
// and without OTAM.
type Evaluation struct {
	// H0 and H1 are the raw per-beam complex channel gains (antennas and
	// propagation, no TX power).
	H0, H1 complex128
	// G0 and G1 are the effective received complex amplitudes in √W
	// while transmitting bit 0 / bit 1 with OTAM, including TX power,
	// switch insertion loss and leakage, and the implementation margin.
	G0, G1 complex128
	// NoisePowerW is the receiver noise power.
	NoisePowerW float64
	// SNRWithOTAM is the paper's reported link SNR (peak received power
	// over noise) when the node uses both beams (Figs. 10b, 12, 13).
	SNRWithOTAM float64
	// SNRWithoutOTAM is the link SNR when the node transmits classical
	// ASK through Beam 1 only (Fig. 10a's baseline).
	SNRWithoutOTAM float64
	// ASKDepth ∈ [0,1] is the over-the-air modulation depth
	// |A1−A0|/(A1+A0); near zero is the §6.3 equal-loss corner where
	// only FSK decodes.
	ASKDepth float64
	// Inverted reports that Beam 0 arrives stronger than Beam 1
	// (blocked-LoS regime of Fig. 4(b)).
	Inverted bool
	// PathClass is "los", "nlos" or "blocked" — populated only by
	// EvaluateWithClass, which derives it from the same path enumeration
	// as the gains.
	PathClass string
}

// implAmp converts the implementation margin to an amplitude factor.
func (c LinkConfig) implAmp() float64 {
	return math.Pow(10, -c.ImplementationLossDB/20)
}

// Evaluate computes the instantaneous link budget.
func (l *Link) Evaluate() Evaluation {
	h0, h1 := l.Env.BeamGains(l.Node, l.Beams, l.AP, l.APPattern)
	return l.evaluateGains(h0, h1)
}

// EvaluateWithClass is Evaluate plus the propagation path class, computed
// from a single path enumeration instead of the three that separate
// Evaluate + BestPathClass calls would pay. The gains (and everything
// derived from them) are bit-identical to Evaluate's. This is the network
// engine's per-node hot path.
func (l *Link) EvaluateWithClass() Evaluation {
	h0, h1, class := l.Env.BeamGainsWithClass(l.Node, l.Beams, l.AP, l.APPattern)
	ev := l.evaluateGains(h0, h1)
	ev.PathClass = class
	return ev
}

func (l *Link) evaluateGains(h0, h1 complex128) Evaluation {
	amp := math.Sqrt(units.FromDBm(l.Cfg.TxPowerDBm)) * l.Cfg.implAmp()
	sel := complex(l.Switch.SelectedGain(), 0)
	leak := complex(l.Switch.LeakageGain(), 0)
	// While bit b is sent, the selected beam carries the carrier and the
	// other port leaks 65 dB down; both arrive through their own paths.
	g0 := complex(amp, 0) * (sel*h0 + leak*h1)
	g1 := complex(amp, 0) * (sel*h1 + leak*h0)

	n := l.Cfg.NoisePowerW()
	a0 := cmplx.Abs(g0)
	a1 := cmplx.Abs(g1)
	peak := math.Max(a0, a1)

	depth := 0.0
	if a0+a1 > 0 {
		depth = math.Abs(a1-a0) / (a1 + a0)
	}
	return Evaluation{
		H0: h0, H1: h1,
		G0: g0, G1: g1,
		NoisePowerW:    n,
		SNRWithOTAM:    units.DB(peak * peak / n),
		SNRWithoutOTAM: units.DB(a1 * a1 / n),
		ASKDepth:       depth,
		Inverted:       a0 > a1,
	}
}

// BERWithOTAM converts the OTAM link SNR into a bit-error rate the way
// §9.3 does: standard ASK tables on the measured SNR (joint ASK-FSK
// guarantees one modality always decodes, so peak SNR is the operative
// quantity).
func (e Evaluation) BERWithOTAM() float64 { return modem.OOKBER(e.SNRWithOTAM) }

// BERWithoutOTAM is the same table applied to the fixed-beam SNR.
func (e Evaluation) BERWithoutOTAM() float64 { return modem.OOKBER(e.SNRWithoutOTAM) }

// ASKOnlyBER estimates the BER if the receiver could only slice
// amplitudes: the slicer's effective SNR shrinks with the modulation
// depth, so equal-loss channels are undecodable — the ablation behind
// §6.3's "ASK alone is not sufficient".
func (e Evaluation) ASKOnlyBER() float64 {
	if e.ASKDepth <= 0 {
		return 0.5
	}
	eff := e.SNRWithOTAM + 20*math.Log10(e.ASKDepth)
	return modem.OOKBER(eff)
}

// FSKOnlyBER estimates the BER if the receiver could only discriminate
// tones: it needs both tones to arrive, so the weaker beam's SNR governs,
// and a fully faded beam is undecodable — the other half of §6.3.
func (e Evaluation) FSKOnlyBER() float64 {
	a0 := cmplx.Abs(e.G0)
	a1 := cmplx.Abs(e.G1)
	weaker := math.Min(a0, a1)
	if weaker <= 0 || e.NoisePowerW <= 0 {
		return 0.5
	}
	return modem.FSKBER(units.DB(weaker * weaker / e.NoisePowerW))
}

// JointBER is the decode probability of the actual mmX receiver: the
// better of the two modalities per channel instance.
func (e Evaluation) JointBER() float64 {
	return math.Min(e.ASKOnlyBER(), e.FSKOnlyBER())
}
