package simnet

import (
	"container/heap"
	"math"

	"mmx/internal/core"
	"mmx/internal/faults"
)

// event is one scheduled simulation action.
type event struct {
	at  float64
	seq int // tie-break so ordering is deterministic
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a minimal deterministic discrete-event engine.
type Sim struct {
	now float64
	seq int
	q   eventQueue
}

// NewSim returns an engine at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at an absolute time (clamped to now for past times).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.q, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// RunUntil executes events in time order until the queue drains or the
// horizon is reached, and leaves the clock at the horizon.
func (s *Sim) RunUntil(horizon float64) {
	for s.q.Len() > 0 {
		e := s.q[0]
		if e.at > horizon {
			break
		}
		heap.Pop(&s.q)
		s.now = e.at
		e.fn()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// NoSampleSINRdB is the sentinel MinSINRdB and MeanSINRdB take for a
// node that was never SINR-sampled during a run — Down or absent at
// every sampling instant (the environment-step observation points). A
// defined negative-infinity sentinel replaces the +Inf min / zero mean
// garbage of an empty sample set; check SINRSamples == 0 to detect the
// case programmatically. The value equals itself, so whole-RunStats
// equality comparisons stay valid.
var NoSampleSINRdB = math.Inf(-1)

// NodeStats accumulates one node's traffic outcome over a run. With
// in-run churn, a node's stats are keyed by ID and cover exactly its
// presence: traffic accounting starts at join and stops at leave, and
// time-normalized figures (AirtimeFraction) divide by ActiveS, not the
// run duration.
type NodeStats struct {
	ID         uint32
	FramesSent int
	// FramesLost counts channel losses (residual bit errors).
	FramesLost int
	// FramesDropped counts queue overflows: the node's adapted PHY rate
	// could not drain the offered load within the backlog bound.
	FramesDropped int
	// FramesOutage counts frames discarded because the node's adapted
	// rate was 0 — no ladder step closes the link — so transmitting
	// would only burn energy.
	FramesOutage  int
	BitsDelivered float64
	// MinSINRdB and MeanSINRdB summarize the node's sampled SINR. When
	// SINRSamples is 0 (the node was Down or absent at every sampling
	// instant) both hold the NoSampleSINRdB sentinel.
	MinSINRdB  float64
	MeanSINRdB float64
	// SINRSamples counts the sampling instants that observed the node —
	// the denominator of MeanSINRdB and OutageFraction. 0 marks the
	// no-sample case (see NoSampleSINRdB).
	SINRSamples    int
	sinrAccum      float64
	OutageFraction float64
	outages        int
	// AirtimeFraction is the share of the node's time-present (ActiveS)
	// its transmitter was on the air at its adapted rate.
	AirtimeFraction float64
	airtime         float64
	// MeanDelayS is the average frame latency (queueing + airtime) of
	// transmitted frames.
	MeanDelayS float64
	delayAccum float64
	delayed    int
	// JoinedAtS is the sim time the node first became a member during
	// the run (0 for nodes present at start); LeftAtS is the end of its
	// last presence interval (Duration if still present when the run
	// ended).
	JoinedAtS, LeftAtS float64
	// ActiveS is the node's total time-present: the sum of its presence
	// intervals between joins and leaves.
	ActiveS float64
}

// ControlStats counts the fault-tolerant control plane's work during a
// run: keepalives, lease churn and injected failures. All fields are
// plain counters so two runs can be compared for bit-identity.
type ControlStats struct {
	// RenewsSent counts keepalive cycles attempted by live nodes.
	RenewsSent int
	// RenewsFailed counts cycles where every retry died on the side
	// channel (or failed to rejoin after a nack) — the node kept
	// transmitting on its last-known assignment.
	RenewsFailed int
	// Rejoins counts renew-nacks healed through a full re-handshake.
	Rejoins int
	// Resyncs counts renew-acks whose books disagreed with the node —
	// a lost PromoteMsg or post-restart reallocation the ack repaired.
	Resyncs int
	// LeaseExpiries counts leases the controller reclaimed after their
	// holders fell silent.
	LeaseExpiries int
	// Promotions counts PromoteMsg pushes a live node actually applied.
	Promotions int
	// Crashes, Reboots and APRestarts count executed FaultPlan events.
	Crashes, Reboots, APRestarts int
}

// APInterval is one contiguous association of a node with an AP: the AP's
// registry index and the sim-time span. Intervals close at a leave, a
// roam, or the end of the run (never left dangling). A crash does not
// close the interval — the node stays associated while down.
type APInterval struct {
	AP         int
	FromS, ToS float64
}

// APStats aggregates one AP's share of a run.
type APStats struct {
	// AP is the registry index (AccessPoint.Index).
	AP int
	// Joins and Leaves count in-run membership events whose handshake or
	// release ran at this AP; the starting membership is not counted.
	Joins, Leaves int
	// RoamsIn and RoamsOut count successful roam transitions toward and
	// away from this AP.
	RoamsIn, RoamsOut int
	// LeaseExpiries counts leases this AP's controller reclaimed.
	LeaseExpiries int
	// Members is the AP's association count when the run ended.
	Members int
}

// RunStats summarizes a network run. PerNode is ordered by first
// appearance: the starting membership in join order, then mid-run
// joiners in activation order; a node that leaves and rejoins under the
// same ID keeps one entry accumulating across its presence intervals.
type RunStats struct {
	Duration float64
	PerNode  []NodeStats
	// Control summarizes the control plane's fault handling.
	Control ControlStats
	// Joins and Leaves count membership events executed inside the run
	// (scheduled churn plus Join/Leave calls from callbacks); the
	// starting membership is not counted. JoinsFailed counts mid-run
	// join attempts whose handshake died on the side channel or that
	// named a duplicate ID.
	Joins, Leaves, JoinsFailed int
	// Roams counts successful AP transitions driven by the roaming
	// policy; RoamsFailed counts attempts whose handshake at the new AP
	// died on the side channel (the node fell back toward its old AP).
	Roams, RoamsFailed int
	// PerAP summarizes each AP's share of the run, indexed by AP
	// registry position (always length == number of APs).
	PerAP []APStats
	// APHistory records every node's association intervals by node ID.
	// A node that never roamed has exactly one interval per presence
	// span. Nil for single-AP runs keeps RunStats comparisons cheap.
	APHistory map[uint32][]APInterval
}

// TotalGoodputBps returns the aggregate delivered rate.
func (r RunStats) TotalGoodputBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	total := 0.0
	for _, n := range r.PerNode {
		total += n.BitsDelivered
	}
	return total / r.Duration
}

// nodeHandle is one node's stable accounting slot, keyed by ID for the
// whole run: it survives the node's index in Network.Nodes shifting
// under churn, and accumulates presence intervals across leave/rejoin
// cycles of the same ID.
type nodeHandle struct {
	st        NodeStats
	present   bool
	joinedAt  float64 // start of the current presence interval
	activeS   float64 // sum of closed presence intervals
	busyUntil float64 // transmitter occupancy horizon
	gen       int     // bumped on leave and rejoin: cancels stale frame chains
}

// runState is the live engine state while Run executes. Network.run
// points at it, so membership changes issued mid-run — Join/Leave from
// a traffic or OnMembership callback, ScheduleJoin/ScheduleLeave plans —
// execute at the sim clock through the event heap instead of panicking.
type runState struct {
	nw           *Network
	sim          *Sim
	outageSINRdB float64
	// bases anchor sim time to each AP controller's monotonic clock: a
	// controller may already sit past zero (lossy pre-run handshakes
	// consume virtual time) while sim restarts at zero every Run.
	bases []float64
	ctl   *ControlStats

	joins, leaves, joinsFailed int
	roams, roamsFailed         int

	// apStats accumulates RunStats.PerAP, indexed by AP registry
	// position. apHist accumulates RunStats.APHistory; nil in single-AP
	// runs (no transitions to record, and large runs shouldn't pay for
	// an ID→interval map nobody reads).
	apStats []APStats
	apHist  map[uint32][]APInterval

	handles map[uint32]*nodeHandle
	order   []uint32 // IDs in first-seen order: RunStats.PerNode layout
	// hcache mirrors nw.Nodes: hcache[n.idx] is n's handle, maintained on
	// every membership change, so the per-tick observation loop is O(1)
	// pointer chases instead of a map lookup per node.
	hcache []*nodeHandle

	reports []Report        // cached EvaluateSINR output, parallel to nw.Nodes
	pending map[uint32]bool // IDs with a handshake done, activation queued
}

// nowAt maps the current sim time onto one AP controller's clock.
func (rs *runState) nowAt(ap *AccessPoint) float64 {
	return rs.bases[ap.idx] + rs.sim.Now()
}

// apOpen starts an association interval for id at AP index ap; apClose
// seals the open one. Both are no-ops in single-AP runs.
func (rs *runState) apOpen(id uint32, ap int, at float64) {
	if rs.apHist == nil {
		return
	}
	rs.apHist[id] = append(rs.apHist[id], APInterval{AP: ap, FromS: at, ToS: -1})
}

func (rs *runState) apClose(id uint32, at float64) {
	if rs.apHist == nil {
		return
	}
	iv := rs.apHist[id]
	if n := len(iv); n > 0 && iv[n-1].ToS < 0 {
		iv[n-1].ToS = at
	}
}

// handle returns (creating if needed) the stable accounting slot for id.
func (rs *runState) handle(id uint32) *nodeHandle {
	h := rs.handles[id]
	if h == nil {
		h = &nodeHandle{st: NodeStats{ID: id, MinSINRdB: math.Inf(1), JoinedAtS: rs.sim.Now()}}
		rs.handles[id] = h
		rs.order = append(rs.order, id)
	}
	return h
}

// refresh re-evaluates every node's SINR report (after environment
// steps and control-plane or membership events that change the picture).
// On the dense path that is a full EvaluateSINR; with the sparse core
// live it settles exactly the dirty set — per-node reports are cached on
// the nodes, so an O(degree) membership event never pays an O(n) report
// slice rebuild.
func (rs *runState) refresh() {
	if s := rs.nw.sparse; s != nil {
		s.settle(rs.nw)
		return
	}
	rs.reports = rs.nw.EvaluateSINRInto(rs.reports)
}

// reportOf returns node n's current report: the node-cached one in
// sparse mode, the slot in the parallel report slice in dense mode.
func (rs *runState) reportOf(n *Node) *Report {
	if rs.nw.sparse != nil {
		return &n.sp.rep
	}
	return &rs.reports[n.idx]
}

// observe samples the current reports into per-node stats.
func (rs *runState) observe() {
	for i, n := range rs.nw.Nodes {
		if n.Down {
			continue // a dead radio has no SINR to sample
		}
		r := rs.reportOf(n)
		rs.sample(rs.hcache[i], r.SINRdB)
	}
}

// sample folds one SINR observation into a node's stats.
func (rs *runState) sample(h *nodeHandle, sinrDB float64) {
	st := &h.st
	st.sinrAccum += sinrDB
	st.SINRSamples++
	if sinrDB < st.MinSINRdB {
		st.MinSINRdB = sinrDB
	}
	if sinrDB < rs.outageSINRdB {
		st.outages++
	}
}

// envRefresh is the per-environment-step pipeline: refresh the
// interference picture after the blockers moved, re-adapt every live
// node's PHY rate to it, and sample the SINR observations.
//
// With the sparse core live the three stages fuse into the settle
// passes: syncEnv marks only the nodes the blockers' swept regions can
// have touched, the eval pass re-traces exactly those, and one parallel
// pass over the membership finishes the queued nodes, re-adapts rates
// and accumulates the observation samples — non-dirty nodes' samples
// come from their unchanged cached reports. Every write in the fused
// pass lands in per-node state (the node itself or its stats handle),
// so a fixed-seed run is byte-identical at any worker count, and the
// serial per-node tail the dense path still pays is gone.
func (rs *runState) envRefresh() {
	nw := rs.nw
	s := nw.sparse
	if s == nil {
		rs.refresh()
		// In-run rate adaptation: the reports hold each node's SINR in
		// its configured channel bandwidth, exactly what the ladder walk
		// wants. Rate 0 = outage until a later step clears it.
		for _, n := range nw.Nodes {
			if n.Down {
				continue
			}
			n.RateBps = nw.cappedRate(n, core.RateForSNR(rs.reportOf(n).SINRdB, n.Link.Cfg.BandwidthHz, 1e-6))
		}
		rs.observe()
		return
	}
	s.syncEnv(nw)
	if len(s.dirty) > 0 {
		s.runEvalPass(nw)
	}
	nodes := nw.Nodes
	hcache := rs.hcache
	nw.forEachNode(len(nodes), func(i int) {
		n := nodes[i]
		if n.sp.queued {
			n.sp.queued = false
			if n.sp.sumDirty {
				n.sp.sumDirty = false
				s.finishNode(n)
			}
		}
		if n.Down {
			return
		}
		n.RateBps = nw.cappedRate(n, core.RateForSNR(n.sp.rep.SINRdB, n.Link.Cfg.BandwidthHz, 1e-6))
		rs.sample(hcache[i], n.sp.rep.SINRdB)
	})
	// Dirty entries no longer in the membership were already reset by
	// removeNode; the fused pass cleared everyone else's flags.
	s.dirty = s.dirty[:0]
	s.allStale = false
}

// maxBacklogS bounds per-node queueing: frames older than this are
// dropped rather than queued.
const maxBacklogS = 0.05

// scheduleFrames starts (or restarts, after a rejoin) node n's traffic
// chain: each frame draws its gap and payload from the node's traffic
// model, occupies transmitter airtime at the adapted rate, and is
// delivered with probability (1−BER)^bits. The chain is generation-
// stamped: a leave bumps the handle's gen, so an in-flight frame event
// of a departed node expires silently instead of transmitting for a
// non-member.
func (rs *runState) scheduleFrames(n *Node) {
	h := rs.handle(n.ID)
	gen := h.gen
	var scheduleFrame func()
	scheduleFrame = func() {
		delay, payload := n.Traffic.Next(rs.nw.rng)
		rs.sim.After(delay, func() {
			if h.gen != gen {
				return // the node left: its frame chain ends here
			}
			if payload > 0 && !n.Down {
				bits := float64(8 * payload)
				rate := n.RateBps
				st := &h.st
				st.FramesSent++
				if rate <= 0 {
					// Outage: no ladder step closes the link, so the
					// frame is discarded instead of transmitted at a
					// hopeless rate.
					st.FramesOutage++
				} else {
					airtime := bits / rate
					now := rs.sim.Now()
					if h.busyUntil < now {
						h.busyUntil = now
					}
					queue := h.busyUntil - now
					if queue > maxBacklogS {
						// The adapted rate cannot drain the offered load.
						st.FramesDropped++
					} else {
						h.busyUntil += airtime
						st.airtime += airtime
						st.delayAccum += queue + airtime
						st.delayed++
						// reportOf is O(1) either way: node-cached report
						// in sparse mode, the idx-maintained slot of the
						// parallel slice in dense mode — no ID→index map
						// rebuild per churn event.
						ber := rs.reportOf(n).BER
						pSuccess := math.Pow(1-ber, bits)
						if rs.nw.rng.Float64() < pSuccess {
							st.BitsDelivered += bits
						} else {
							st.FramesLost++
						}
					}
				}
			}
			scheduleFrame()
		})
	}
	scheduleFrame()
}

// Run drives the network for duration seconds: blockers walk (re-evaluated
// every envStep), each node's traffic model emits frames, and every frame
// is delivered with probability (1−BER)^bits at the node's instantaneous
// SINR. SINR below outageSINRdB counts as an outage sample.
//
// The control plane runs alongside the data plane: every node renews its
// spectrum lease each Control.RenewIntervalS, the controller expires the
// leases of nodes that fell silent (reclaiming their spectrum through the
// churn-safe promote path), and an installed faults.Plan injects node
// crash/reboot and AP restart events mid-run. Each environment step also
// re-adapts every live node's PHY rate to the fresh interference picture,
// so a blockage-driven SINR collapse downshifts the ladder in-run — or
// marks the node in outage (rate 0) until the blocker clears. Everything
// is driven by seeded RNGs, so a run is a pure function of (seed,
// SideChannel seed, Plan, churn schedule).
//
// Membership is a first-class simulation event: ScheduleJoin and
// ScheduleLeave plan churn at absolute sim times, and Join/Leave called
// from inside the run (traffic-model or OnMembership callbacks) execute
// at the current sim clock through the same lossy handshake and
// release-retry machinery as pre-run churn. Per-node accounting is keyed
// by ID in stable handles, so stats follow the node — not a slice slot —
// through arbitrary membership change; time-normalized figures divide by
// each node's time-present (NodeStats.ActiveS). Run itself is not
// reentrant and panics if nested.
func (nw *Network) Run(duration, envStep, outageSINRdB float64) RunStats {
	if nw.run != nil {
		panic("simnet: Run is not reentrant")
	}
	sim := NewSim()
	bases := make([]float64, len(nw.APs))
	for i, ap := range nw.APs {
		bases[i] = ap.Controller.NowS()
		ap.Controller.LeaseTTL = nw.Control.LeaseTTLS
	}
	var ctl ControlStats
	rs := &runState{
		nw:           nw,
		sim:          sim,
		outageSINRdB: outageSINRdB,
		bases:        bases,
		ctl:          &ctl,
		apStats:      make([]APStats, len(nw.APs)),
		handles:      make(map[uint32]*nodeHandle, len(nw.Nodes)),
		pending:      map[uint32]bool{},
	}
	if len(nw.APs) > 1 {
		rs.apHist = make(map[uint32][]APInterval, len(nw.Nodes))
	}
	nw.run = rs
	defer func() { nw.run = nil }()

	rs.hcache = make([]*nodeHandle, len(nw.Nodes))
	for i, n := range nw.Nodes {
		h := rs.handle(n.ID)
		h.present = true
		rs.hcache[i] = h
		rs.apOpen(n.ID, n.apIndex(), 0)
	}
	rs.refresh()
	rs.observe()

	var envTick func()
	envTick = func() {
		nw.Env.Step(envStep)
		rs.envRefresh()
		sim.After(envStep, envTick)
	}
	if envStep > 0 {
		sim.After(envStep, envTick)
	}

	// Scheduled fault injection. Targets are resolved by ID at event
	// time — a crash or reboot naming a node that has since left is a
	// no-op.
	if nw.Faults != nil {
		for _, fe := range nw.Faults.Sorted() {
			fe := fe
			switch fe.Kind {
			case faults.NodeCrash:
				sim.At(fe.At, func() {
					if n := nw.nodeByID(fe.NodeID); n != nil && !n.Down {
						n.Down = true
						nw.couplingPowerChanged(n)
						ctl.Crashes++
						rs.refresh()
					}
				})
			case faults.NodeReboot:
				sim.At(fe.At, func() {
					n := nw.nodeByID(fe.NodeID)
					if n == nil || !n.Down {
						return
					}
					ctl.Reboots++
					// Rejoin through the full lossy handshake; if its
					// old lease survived, the AP idempotently re-grants
					// the same spectrum. A handshake that dies entirely
					// leaves the node down until the plan retries.
					if _, err := nw.handshake(n, rs.nowAt(nw.hostAP(n))); err != nil {
						return
					}
					n.Down = false
					nw.applyAssignment(n)
					nw.couplingUpdateNode(n)
					rs.refresh()
				})
			case faults.APRestart:
				if fe.AP < 0 || fe.AP >= len(nw.APs) {
					continue // the plan names an AP this network lacks
				}
				ap := nw.APs[fe.AP]
				sim.At(fe.At, func() {
					ap.down = true
					ctl.APRestarts++
				})
				sim.At(fe.At+fe.DownFor, func() {
					// The AP returns with empty volatile books; nodes
					// keep transmitting on last-known assignments and
					// re-sync via renew-nack → rejoin.
					ap.down = false
					ap.Controller.Restart()
				})
			}
		}
	}

	// Pre-planned churn moves onto the event heap; the plan is consumed
	// so a subsequent Run starts clean.
	for _, ce := range nw.pendingChurn {
		rs.schedule(ce)
	}
	nw.pendingChurn = nil

	// Lease keepalive cycle: renew the living, then expire the silent.
	// Renewing first matters: pre-run lossy handshakes consume virtual
	// controller time, so an early joiner's last contact can already be
	// older than the TTL when Run starts — its first renew must land
	// before the expiry check, not after.
	var renewTick func()
	renewTick = func() {
		changed := false
		for _, n := range nw.Nodes {
			if n.Down {
				continue
			}
			ctl.RenewsSent++
			switch nw.renewOnce(n, rs.nowAt(nw.hostAP(n))) {
			case renewResynced:
				ctl.Resyncs++
				changed = true
			case renewRejoined:
				ctl.Rejoins++
				changed = true
			case renewLost, renewFailed:
				ctl.RenewsFailed++
			}
		}
		for _, ap := range nw.APs {
			expired := ap.Controller.ExpireLeases(rs.nowAt(ap))
			ctl.LeaseExpiries += len(expired)
			rs.apStats[ap.idx].LeaseExpiries += len(expired)
			if len(expired) > 0 {
				// Reclaimed spectrum may promote surviving sharers; the
				// pushes ride the same lossy side channel, and a lost one
				// is repaired by the promoted node's next renew ack.
				ctl.Promotions += nw.pushNotifications(ap, false)
				changed = true
			}
		}
		// A stray entry the TTL (or a restart) has since reclaimed stops
		// being a tolerated exception — drop it so ValidateSpectrum's
		// double-association check regains its full strength.
		for id, ap := range nw.strays {
			if !ap.Controller.HoldsLease(id) {
				delete(nw.strays, id)
			}
		}
		if changed {
			rs.refresh()
		}
		sim.After(nw.Control.RenewIntervalS, renewTick)
	}
	if nw.Control.RenewIntervalS > 0 {
		sim.After(nw.Control.RenewIntervalS, renewTick)
	}

	// Roaming policy tick: only ever scheduled for a multi-AP network
	// with a policy installed, so single-AP runs see an unchanged event
	// sequence.
	if nw.Roam != nil && len(nw.APs) > 1 {
		interval := nw.Roam.CheckIntervalS
		if interval <= 0 {
			interval = 0.2
		}
		var roamTick func()
		roamTick = func() {
			rs.roamTick()
			sim.After(interval, roamTick)
		}
		sim.After(interval, roamTick)
	}

	for _, n := range nw.Nodes {
		rs.scheduleFrames(n)
	}

	sim.RunUntil(duration)

	for _, n := range nw.Nodes {
		rs.apClose(n.ID, duration)
		rs.apStats[n.apIndex()].Members++
	}
	for i := range rs.apStats {
		rs.apStats[i].AP = i
	}

	perNode := make([]NodeStats, 0, len(rs.order))
	for _, id := range rs.order {
		h := rs.handles[id]
		if h.present {
			h.activeS += duration - h.joinedAt
			h.st.LeftAtS = duration
			h.present = false
		}
		st := h.st
		st.ActiveS = h.activeS
		if st.SINRSamples > 0 {
			st.MeanSINRdB = st.sinrAccum / float64(st.SINRSamples)
			st.OutageFraction = float64(st.outages) / float64(st.SINRSamples)
		} else {
			st.MinSINRdB = NoSampleSINRdB
			st.MeanSINRdB = NoSampleSINRdB
		}
		if st.ActiveS > 0 {
			st.AirtimeFraction = st.airtime / st.ActiveS
		}
		if st.delayed > 0 {
			st.MeanDelayS = st.delayAccum / float64(st.delayed)
		}
		perNode = append(perNode, st)
	}
	return RunStats{
		Duration: duration, PerNode: perNode, Control: ctl,
		Joins: rs.joins, Leaves: rs.leaves, JoinsFailed: rs.joinsFailed,
		Roams: rs.roams, RoamsFailed: rs.roamsFailed,
		PerAP: rs.apStats, APHistory: rs.apHist,
	}
}
