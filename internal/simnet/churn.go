package simnet

import (
	"fmt"

	"mmx/internal/channel"
	"mmx/internal/core"
	"mmx/internal/mac"
)

// churnEvent is one planned membership change: a join carries the full
// admission parameters, a leave only the ID.
type churnEvent struct {
	at     float64
	join   bool
	id     uint32
	pose   channel.Pose
	demand float64
	traffic TrafficModel
}

// ScheduleJoin plans a node admission at absolute sim time at (seconds
// from Run start). The join executes inside Run through the full lossy
// handshake: the handshake's virtual time elapses on the event heap
// before the node goes on the air, and a handshake that exhausts its
// retries only increments RunStats.JoinsFailed. Called while Run is
// executing it schedules on the live event heap; called before Run it is
// queued and consumed by the next Run.
func (nw *Network) ScheduleJoin(at float64, id uint32, pose channel.Pose, demandBps float64, traffic TrafficModel) {
	nw.scheduleChurn(churnEvent{at: at, join: true, id: id, pose: pose, demand: demandBps, traffic: traffic})
}

// ScheduleLeave plans a node departure at absolute sim time at. The
// departure executes inside Run through the release-retry machinery;
// leaving an ID that is not a member at that time is a no-op.
func (nw *Network) ScheduleLeave(at float64, id uint32) {
	nw.scheduleChurn(churnEvent{at: at, id: id})
}

func (nw *Network) scheduleChurn(ce churnEvent) {
	if rs := nw.run; rs != nil {
		rs.schedule(ce)
		return
	}
	nw.pendingChurn = append(nw.pendingChurn, ce)
}

// schedule puts one churn event on the live event heap.
func (rs *runState) schedule(ce churnEvent) {
	rs.sim.At(ce.at, func() {
		if ce.join {
			rs.joinNow(ce.id, ce.pose, ce.demand, ce.traffic) //nolint:errcheck // failure is counted in JoinsFailed
		} else {
			rs.leaveNow(ce.id)
		}
	})
}

// joinNow admits a node at the current sim clock. The control handshake
// runs through the retry machinery anchored at the controller's timeline
// (ctrlNow); the virtual time it consumed then elapses on the event heap
// before the node is activated — appended to the membership, added to
// the coupling matrix incrementally, its presence interval opened and
// its traffic chain started. Between handshake and activation the ID is
// held pending so a racing duplicate join is rejected. A handshake
// failure increments JoinsFailed and returns a wrapped ErrJoinFailed;
// if Run's horizon ends before the activation delay elapses the node
// never becomes a member (its orphaned grant is reclaimed by lease
// expiry, exactly as a real half-joined device would be).
func (rs *runState) joinNow(id uint32, pose channel.Pose, demandBps float64, traffic TrafficModel) (*Node, error) {
	nw := rs.nw
	if nw.nodeByID(id) != nil || rs.pending[id] {
		rs.joinsFailed++
		return nil, fmt.Errorf("%w: duplicate node ID %d", ErrJoinFailed, id)
	}
	n := &Node{ID: id, Pose: pose, Demand: demandBps, Traffic: traffic}
	n.AP = nw.selectAP(pose.Pos)
	ap := n.AP
	n.SDMHarmonic = ap.SDM.BestHarmonic(ap.Pose.AngleTo(pose.Pos))
	took, err := nw.handshake(n, rs.nowAt(ap))
	if err != nil {
		rs.joinsFailed++
		return nil, err
	}
	rs.pending[id] = true
	rs.sim.After(took, func() {
		delete(rs.pending, id)
		n.Link = core.NewLink(nw.Env, pose, ap.Pose)
		n.Link.Beams = nw.NodeBeams
		nw.applyAssignment(n)
		nw.registerNode(n)
		nw.couplingAddNode()
		rs.joins++
		rs.apStats[ap.idx].Joins++
		rs.apOpen(id, ap.idx, rs.sim.Now())
		h := rs.handle(id)
		h.present = true
		h.joinedAt = rs.sim.Now()
		rs.hcache = append(rs.hcache, h) // registerNode put n at the tail
		rs.refresh()
		rs.scheduleFrames(n)
		if nw.OnMembership != nil {
			nw.OnMembership("join", id)
		}
	})
	return n, nil
}

// leaveNow removes a member at the current sim clock: the node drops out
// of the membership list and the coupling matrix (incremental column/row
// compaction), its spectrum release rides the retry machinery over the
// side channel (a release that dies entirely is reclaimed by lease
// expiry), and promote pushes for surviving sharers are delivered
// lossily — a lost push heals at the promoted node's next renew ack.
// The leaver's presence interval closes and its frame chain is
// generation-cancelled. Leaving a non-member is a no-op.
func (rs *runState) leaveNow(id uint32) {
	nw := rs.nw
	leaver := nw.nodeByID(id)
	if leaver == nil {
		return
	}
	ap := nw.hostAP(leaver)
	removedAt := leaver.idx
	nw.unregisterNodeAt(removedAt)
	rs.hcache = append(rs.hcache[:removedAt], rs.hcache[removedAt+1:]...)
	nw.couplingRemoveNode(leaver, removedAt)
	if !leaver.Down {
		leaver.seq++
		nw.transact(ap, mac.ReleaseMsg{NodeID: id, Seq: leaver.seq}, rs.nowAt(ap)) //nolint:errcheck
	} else {
		raw, _ := mac.Marshal(mac.ReleaseMsg{NodeID: id})
		ap.Controller.Handle(raw) //nolint:errcheck // release of a crashed node's books entry
	}
	delete(nw.strays, id)
	rs.ctl.Promotions += nw.pushNotifications(ap, false)
	rs.leaves++
	rs.apStats[ap.idx].Leaves++
	now := rs.sim.Now()
	rs.apClose(id, now)
	h := rs.handle(id)
	if h.present {
		h.activeS += now - h.joinedAt
		h.st.LeftAtS = now
		h.present = false
	}
	h.gen++ // cancels the departed node's in-flight frame chain
	rs.refresh()
	if nw.OnMembership != nil {
		nw.OnMembership("leave", id)
	}
}
