package netctl

import (
	"sync"
	"time"
)

// Clock is the daemon's swappable time source. Lease TTL expiry — the
// mechanism that reclaims crashed clients' spectrum — is driven entirely
// through this interface, so production runs on the monotonic wall clock
// while tests advance a FakeClock by hand and observe expiry
// deterministically.
type Clock interface {
	// NowS returns monotonic seconds since an arbitrary origin.
	NowS() float64
}

// realClock measures monotonic seconds since its creation.
type realClock struct{ t0 time.Time }

// NewRealClock returns a Clock backed by the monotonic wall clock.
func NewRealClock() Clock { return &realClock{t0: time.Now()} }

func (c *realClock) NowS() float64 { return time.Since(c.t0).Seconds() }

// FakeClock is a manually advanced Clock for deterministic tests.
type FakeClock struct {
	mu  sync.Mutex
	now float64
}

// NowS returns the fake time.
func (c *FakeClock) NowS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake time forward by s seconds.
func (c *FakeClock) Advance(s float64) {
	c.mu.Lock()
	c.now += s
	c.mu.Unlock()
}
