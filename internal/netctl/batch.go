package netctl

import "net"

// Batch I/O abstraction for the server's ingest/reply pipeline. A
// batchReader blocks for the first datagram (honoring read deadlines),
// then takes whatever more is immediately available up to the batch
// size; a batchWriter flushes a batch of reply frames, each to its own
// frame.addr. On Linux these map to one recvmmsg/sendmmsg syscall per
// batch; the in-memory test network moves batches per channel sweep;
// everything else degrades to one datagram per ReadFrom/WriteTo call —
// the portable single-message fallback.
type batchReader interface {
	// readBatch fills fs (reusing any non-nil pooled frames already in
	// it, acquiring the rest) and returns how many lead entries hold
	// received datagrams. Each filled frame carries its source address;
	// a frame that arrived truncated reports n > mac.MaxFrameLen so the
	// caller's malformed check catches it.
	readBatch(fs []*frame) (int, error)
}

type batchWriter interface {
	// writeBatch sends every frame to its addr. Best-effort: an error
	// means some tail of the batch was lost, which the client retry
	// machinery absorbs exactly like wire loss. Frames remain owned by
	// the caller (it recycles them afterwards).
	writeBatch(fs []*frame) error
}

// batchIO mints per-goroutine readers and writers over one socket.
// Readers and writers hold per-goroutine scratch state (iovecs, sockaddr
// storage, interning tables), so each reader/worker goroutine gets its
// own; the underlying socket is shared and safe for concurrent batch
// syscalls.
type batchIO interface {
	reader(batch int) batchReader
	writer(batch int) batchWriter
}

// newBatchIO picks the fastest implementation for conn: the in-memory
// test network and (on Linux amd64/arm64) recvmmsg/sendmmsg over UDP
// move whole batches per call; anything else falls back to
// single-message I/O with identical semantics.
func newBatchIO(conn net.PacketConn) batchIO {
	if mc, ok := conn.(*memServerConn); ok {
		return mc
	}
	if uc, ok := conn.(*net.UDPConn); ok {
		if bio := newUDPBatchIO(uc); bio != nil {
			return bio
		}
	}
	return &genericIO{conn: conn}
}

// genericIO is the portable fallback: one datagram per syscall, no
// shared scratch state, so one instance serves as reader and writer for
// any number of goroutines.
type genericIO struct{ conn net.PacketConn }

func (g *genericIO) reader(int) batchReader { return g }
func (g *genericIO) writer(int) batchWriter { return g }

func (g *genericIO) readBatch(fs []*frame) (int, error) {
	f := fs[0]
	if f == nil {
		f = getFrame()
		fs[0] = f
	}
	n, addr, err := g.conn.ReadFrom(f.buf[:])
	if err != nil {
		return 0, err
	}
	f.n, f.addr = n, addr
	return 1, nil
}

func (g *genericIO) writeBatch(fs []*frame) error {
	var firstErr error
	for _, f := range fs {
		if _, err := g.conn.WriteTo(f.bytes(), wireAddr(f.addr)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
