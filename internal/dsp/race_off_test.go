//go:build !race

package dsp

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops a fraction of Puts under the race detector, so
// allocation-count assertions over pooled paths only hold without it.
const raceEnabled = false
