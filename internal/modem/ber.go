package modem

import (
	"math"
	"sync/atomic"

	"mmx/internal/stats"
)

// BERFloor is the smallest BER the analytic curves report, matching the
// "<10^-15" axis floor of Fig. 11.
const BERFloor = 1e-15

// OOKBER returns the analytic bit-error rate of the mmX ASK (on-off
// keying) link at a given peak SNR in dB. Following the paper's §9.3
// ("substituting the SNR measurements into standard BER tables based on
// the ASK modulation"), we use the coherent OOK expression
//
//	BER = Q(√SNR)
//
// with SNR the ratio of mark (peak) signal power to noise power at the
// slicer. Anchor points: 10 dB → ≈8·10⁻⁴, 15 dB → ≈10⁻⁸, ≥17.5 dB →
// ≤10⁻¹². The result is clamped to [BERFloor, 0.5].
func OOKBER(snrDB float64) float64 {
	if math.IsInf(snrDB, -1) {
		return 0.5
	}
	snr := math.Pow(10, snrDB/10)
	ber := stats.Q(math.Sqrt(snr))
	if ber < BERFloor {
		return BERFloor
	}
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// FSKBER returns the analytic BER of non-coherent binary FSK at the given
// SNR in dB: BER = ½·e^{−SNR/2}, clamped like OOKBER.
func FSKBER(snrDB float64) float64 {
	if math.IsInf(snrDB, -1) {
		return 0.5
	}
	snr := math.Pow(10, snrDB/10)
	ber := 0.5 * math.Exp(-snr/2)
	if ber < BERFloor {
		return BERFloor
	}
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// reqSNRMemo holds the last RequiredSNRForOOKBER result. Rate adaptation
// inverts the same target BER for every node on every environment step;
// without this, each call pays QInv's 200-iteration bisection (one Erfc
// per iteration) to re-derive a constant.
var reqSNRMemo atomic.Pointer[[2]float64]

// RequiredSNRForOOKBER inverts OOKBER: the peak SNR in dB needed to reach
// a target BER. Targets at or below BERFloor return the SNR for BERFloor.
func RequiredSNRForOOKBER(ber float64) float64 {
	if ber >= 0.5 {
		return math.Inf(-1)
	}
	if ber < BERFloor {
		ber = BERFloor
	}
	if m := reqSNRMemo.Load(); m != nil && m[0] == ber {
		return m[1]
	}
	x := stats.QInv(ber)
	snr := 10 * math.Log10(x*x)
	reqSNRMemo.Store(&[2]float64{ber, snr})
	return snr
}
