package simnet

import (
	"fmt"

	"mmx/internal/faults"
	"mmx/internal/mac"
	"mmx/internal/netctl"
)

// ControlConfig sets the timing of the fault-tolerant control plane: the
// node-side retry state machine and the lease/renew keepalive cycle.
type ControlConfig struct {
	// TimeoutS is how long a node waits for a reply before retrying.
	TimeoutS float64
	// MaxAttempts bounds the retry state machine per exchange.
	MaxAttempts int
	// Backoff paces the retries (capped exponential + seeded jitter).
	Backoff faults.Backoff
	// LeaseTTLS is the spectrum lease lifetime: a node silent for longer
	// is expired and its spectrum reclaimed. 0 disables expiry.
	LeaseTTLS float64
	// RenewIntervalS is the keepalive period; it must be comfortably
	// below LeaseTTLS so a few lost renews don't kill a live node's
	// lease.
	RenewIntervalS float64
}

// DefaultControlConfig returns the timing used throughout the tests and
// examples: 20 ms reply timeout, 8 attempts with 20 ms → 500 ms doubling
// backoff at ±25% jitter, 1 s leases renewed every 300 ms.
func DefaultControlConfig() ControlConfig {
	return ControlConfig{
		TimeoutS:    0.02,
		MaxAttempts: 8,
		Backoff:     faults.Backoff{BaseS: 0.02, MaxS: 0.5, Factor: 2, Jitter: 0.25},
		LeaseTTLS:   1.0,
		RenewIntervalS: 0.3,
	}
}

// retrier adapts the control timing onto the shared netctl retry state
// machine. Sleep stays nil: the simulator runs on virtual time, so the
// machine's elapsed accounting (one TimeoutS plus one jittered backoff
// draw per failed attempt) is the time that passes.
func (cc ControlConfig) retrier() netctl.Retrier {
	return netctl.Retrier{
		TimeoutS:    cc.TimeoutS,
		MaxAttempts: cc.MaxAttempts,
		Backoff:     cc.Backoff,
	}
}

// transact runs one request/reply exchange over the (possibly lossy)
// control side channel: marshal, transmit, collect the reply, and on
// loss retry through netctl.Retrier — the same state machine the socket
// client runs on real time, here fed virtual-time attempts. It returns
// the decoded reply, the virtual time the exchange consumed, and an
// error (netctl.ErrExhausted) when every attempt failed. Duplicate
// request copies are deliberately all delivered to the controller —
// that is what exercises its idempotent handling — and duplicate or
// stale replies (wrong sequence number) are discarded by the
// caller-side match.
func (nw *Network) transact(ap *AccessPoint, req any, at float64) (any, float64, error) {
	raw, err := mac.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	node, seq, _ := mac.RequestIdent(req)
	return nw.Control.retrier().Do(nw.ctrlRNG, func(_ int, elapsed float64) (any, float64, bool) {
		return nw.exchange(ap, raw, node, seq, at+elapsed)
	})
}

// exchange is one attempt: the request goes through the side channel
// (drop/duplicate/truncate/delay), every arriving copy is handled by the
// controller (truncated copies fail to parse and die there), and each
// reply goes back through the side channel. The first reply copy whose
// identity matches (node, seq) and whose round trip fits the timeout
// wins.
func (nw *Network) exchange(ap *AccessPoint, raw []byte, node, seq uint32, at float64) (any, float64, bool) {
	requests := nw.Side.Transmit(raw)
	if ap.down {
		// The AP is rebooting: frames fall on deaf ears.
		return nil, 0, false
	}
	var reply any
	var rtt float64
	got := false
	for _, rd := range requests {
		replyRaw, err := ap.Controller.HandleAt(rd.Frame, at+rd.DelayS)
		if err != nil || replyRaw == nil {
			continue // garbled on the air, or not a replyable message
		}
		for _, dd := range nw.Side.Transmit(replyRaw) {
			if got {
				continue // duplicate reply: discarded by the node
			}
			msg, err := mac.Unmarshal(dd.Frame)
			if err != nil {
				continue
			}
			rn, rs, ok := mac.ReplyIdent(msg)
			if !ok || rn != node || rs != seq {
				continue // stale or misaddressed reply: discarded
			}
			if total := rd.DelayS + dd.DelayS; total <= nw.Control.TimeoutS {
				reply, rtt, got = msg, total, true
			}
		}
	}
	return reply, rtt, got
}

// handshake drives the full join exchange for node n at its serving AP
// starting at virtual time at: a JoinRequest with retries, then — when
// rejected into SDM — TMA-aware host-channel placement and a
// ShareConfirm with retries. On success n.Assignment and n.SDMShared
// reflect the grant. It returns the virtual time the handshake consumed.
func (nw *Network) handshake(n *Node, at float64) (float64, error) {
	ap := nw.hostAP(n)
	n.seq++
	reply, took, err := nw.transact(ap, mac.JoinRequest{NodeID: n.ID, Seq: n.seq, DemandBps: n.Demand}, at)
	if err != nil {
		return took, fmt.Errorf("%w: %v", ErrJoinFailed, err)
	}
	switch m := reply.(type) {
	case mac.AssignmentMsg:
		n.SDMShared = false
		n.Assignment = mac.Assignment{
			NodeID: n.ID, CenterHz: m.CenterHz, WidthHz: m.WidthHz, FSKOffsetHz: m.FSKOffsetHz,
		}
	case mac.RejectMsg:
		n.SDMShared = true
		width := mac.BandwidthForRate(n.Demand)
		n.Assignment = mac.Assignment{
			NodeID: n.ID, CenterHz: m.ShareHz, WidthHz: width, FSKOffsetHz: width * 0.05,
		}
		// The reject carries a nominal host channel, but the AP knows
		// every occupant's harmonic slot: place the newcomer on the
		// channel whose occupants are farthest from its slot so the
		// TMA can actually separate them.
		if c, ok := nw.bestHostChannel(ap, n.SDMHarmonic, ap.Pose.AngleTo(n.Pose.Pos), n.ID); ok {
			n.Assignment.CenterHz = c
		}
		// Report the final placement back so the AP's spectrum books
		// track where the sharer really landed — this is what lets the
		// controller promote (rather than re-grant) the channel when
		// its FDM owner later leaves.
		n.seq++
		confirm := mac.ShareConfirmMsg{
			NodeID:   n.ID,
			Seq:      n.seq,
			ShareHz:  n.Assignment.CenterHz,
			WidthHz:  n.Assignment.WidthHz,
			Harmonic: int8(n.SDMHarmonic),
		}
		_, t2, err := nw.transact(ap, confirm, at+took)
		took += t2
		if err != nil {
			// The placement is chosen but the AP never heard the
			// confirm: the node operates on it anyway and the books
			// heal at the next renew (nack → rejoin).
			return took, fmt.Errorf("%w: %v", ErrJoinFailed, err)
		}
	default:
		return took, ErrJoinFailed
	}
	return took, nil
}

// renewResult tags what a keepalive cycle did for one node.
type renewResult uint8

const (
	renewOK renewResult = iota
	renewResynced
	renewRejoined
	renewLost
	renewFailed
)

// renewOnce runs one lease keepalive for node n at virtual time at. The
// ack doubles as a state sync: if the AP's books disagree with the
// node's local assignment (a PromoteMsg was lost, or the node was moved
// by a post-restart reallocation), the node adopts the AP's view. A nack
// means the lease is gone — expired or wiped by an AP restart — and the
// node rejoins through the full handshake. A timeout leaves the node
// transmitting on its last-known assignment (graceful degradation) until
// the next keepalive.
func (nw *Network) renewOnce(n *Node, at float64) renewResult {
	n.seq++
	reply, took, err := nw.transact(nw.hostAP(n), mac.RenewMsg{NodeID: n.ID, Seq: n.seq}, at)
	if err != nil {
		return renewFailed
	}
	switch m := reply.(type) {
	case mac.RenewAckMsg:
		if m.Shared == n.SDMShared &&
			m.CenterHz == n.Assignment.CenterHz &&
			m.WidthHz == n.Assignment.WidthHz {
			return renewOK
		}
		n.SDMShared = m.Shared
		n.Assignment = mac.Assignment{
			NodeID: n.ID, CenterHz: m.CenterHz, WidthHz: m.WidthHz, FSKOffsetHz: m.FSKOffsetHz,
		}
		nw.applyAssignment(n)
		nw.couplingUpdateNode(n)
		return renewResynced
	case mac.RenewNackMsg:
		if _, err := nw.handshake(n, at+took); err != nil {
			return renewLost
		}
		nw.applyAssignment(n)
		nw.couplingUpdateNode(n)
		return renewRejoined
	default:
		return renewFailed
	}
}

// pushNotifications delivers one AP controller's queued PromoteMsg pushes
// through the side channel. A push that the channel drops is simply
// lost — the promoted node keeps operating as a sharer until its next
// renew ack re-syncs it.
func (nw *Network) pushNotifications(ap *AccessPoint, reliable bool) (applied int) {
	for _, note := range ap.Controller.TakeNotifications() {
		if reliable {
			if nw.applyPromotion(ap, note) {
				applied++
			}
			continue
		}
		for _, d := range nw.Side.Transmit(note) {
			if len(d.Frame) == len(note) && nw.applyPromotion(ap, d.Frame) {
				applied++
				break
			}
		}
	}
	return applied
}
