// Package baseline implements the comparators mmX is evaluated against:
// the conventional phased-array radio that must *search* for the best
// beam (with its probe/feedback latency and energy costs, §2/§6), and the
// fixed-beam ASK transmitter of the paper's "without OTAM" scenario
// (§9.2). These let the benches quantify exactly what OTAM eliminates.
package baseline

import (
	"math"

	"mmx/internal/antenna"
	"mmx/internal/channel"
	"mmx/internal/rf"
	"mmx/internal/units"
)

// Codebook is a set of steering directions a phased array can probe.
type Codebook []float64

// UniformCodebook returns n beams evenly covering [-span/2, +span/2]
// radians.
func UniformCodebook(n int, span float64) Codebook {
	cb := make(Codebook, n)
	if n == 1 {
		cb[0] = 0
		return cb
	}
	for i := range cb {
		cb[i] = -span/2 + span*float64(i)/float64(n-1)
	}
	return cb
}

// PhasedArrayNode is the conventional mmWave IoT radio mmX replaces: an
// N-element phased array that steers a single beam and must align it with
// the AP before communicating.
type PhasedArrayNode struct {
	// Elements is the array size (8 in §6's cost discussion).
	Elements int
	// Array is the steerable ULA.
	Array *antenna.ULA
	// PeakGainDBi calibrates the steered beam's peak gain.
	PeakGainDBi float64
	// ProbeDuration is the airtime of one beam probe plus its AP
	// feedback (§6: searching "needs multiple feedbacks from the AP").
	ProbeDuration float64
	// RadioPowerW is the radio's draw while probing (PA + phased array).
	RadioPowerW float64
}

// NewPhasedArrayNode returns the §6 strawman: 8 elements, probe+feedback
// of 100 µs, powered like rf.PhasedArrayRadio.
func NewPhasedArrayNode() *PhasedArrayNode {
	n := rf.PhasedArraySize
	return &PhasedArrayNode{
		Elements:      n,
		Array:         antenna.NewULA(antenna.DefaultPatch(), n, 0.5),
		PeakGainDBi:   10 + 10*math.Log10(float64(n)/2), // larger array, more gain
		ProbeDuration: 100e-6,
		RadioPowerW:   rf.PhasedArrayRadio().PowerW(),
	}
}

// steeredPattern returns the array steered toward theta as a calibrated
// pattern.
func (p *PhasedArrayNode) steeredPattern(theta float64) antenna.Pattern {
	p.Array.SteerTo(theta)
	return antenna.FixedBeam{Source: p.Array, PeakDBi: p.PeakGainDBi}
}

// SearchResult reports one beam-alignment run.
type SearchResult struct {
	// BestTheta is the chosen steering direction (relative to the node's
	// boresight).
	BestTheta float64
	// BestGainDB is the link gain achieved with that beam.
	BestGainDB float64
	// Probes is how many beam/feedback exchanges the search used.
	Probes int
	// Latency is the search's wall-clock time.
	Latency float64
	// EnergyJ is the node energy burned searching.
	EnergyJ float64
}

// linkGainDB evaluates the steered link gain for one probe direction.
func (p *PhasedArrayNode) linkGainDB(env *channel.Environment, node, ap channel.Pose, apPat antenna.Pattern, theta float64) float64 {
	return env.GainDB(node, p.steeredPattern(theta), ap, apPat)
}

// ExhaustiveSearch probes every codebook entry (the classic 802.11ad-style
// sweep, §3: "exhaustively search for the best beam alignment") and picks
// the strongest.
func (p *PhasedArrayNode) ExhaustiveSearch(env *channel.Environment, node, ap channel.Pose, apPat antenna.Pattern, cb Codebook) SearchResult {
	best := math.Inf(-1)
	bestTheta := 0.0
	for _, th := range cb {
		if g := p.linkGainDB(env, node, ap, apPat, th); g > best {
			best = g
			bestTheta = th
		}
	}
	probes := len(cb)
	lat := float64(probes) * p.ProbeDuration
	return SearchResult{
		BestTheta:  bestTheta,
		BestGainDB: best,
		Probes:     probes,
		Latency:    lat,
		EnergyJ:    lat * p.RadioPowerW,
	}
}

// HierarchicalSearch does a two-stage sweep: a coarse pass over sqrt-many
// sectors, then a fine pass inside the winning sector. Fewer probes, same
// hardware burden.
func (p *PhasedArrayNode) HierarchicalSearch(env *channel.Environment, node, ap channel.Pose, apPat antenna.Pattern, cb Codebook) SearchResult {
	if len(cb) <= 2 {
		return p.ExhaustiveSearch(env, node, ap, apPat, cb)
	}
	coarseN := int(math.Ceil(math.Sqrt(float64(len(cb)))))
	stride := len(cb) / coarseN
	if stride < 1 {
		stride = 1
	}
	probes := 0
	bestIdx, best := 0, math.Inf(-1)
	for i := 0; i < len(cb); i += stride {
		probes++
		if g := p.linkGainDB(env, node, ap, apPat, cb[i]); g > best {
			best = g
			bestIdx = i
		}
	}
	lo := bestIdx - stride
	if lo < 0 {
		lo = 0
	}
	hi := bestIdx + stride
	if hi >= len(cb) {
		hi = len(cb) - 1
	}
	bestTheta := cb[bestIdx]
	for i := lo; i <= hi; i++ {
		probes++
		if g := p.linkGainDB(env, node, ap, apPat, cb[i]); g > best {
			best = g
			bestTheta = cb[i]
		}
	}
	lat := float64(probes) * p.ProbeDuration
	return SearchResult{
		BestTheta:  bestTheta,
		BestGainDB: best,
		Probes:     probes,
		Latency:    lat,
		EnergyJ:    lat * p.RadioPowerW,
	}
}

// SearchOverheadPerEvent returns the fraction of a node's time spent
// re-searching if the environment changes every coherenceS seconds (the
// mobility burden §6 describes; OTAM's overhead is identically zero).
func SearchOverheadPerEvent(searchLatency, coherenceS float64) float64 {
	if coherenceS <= 0 {
		return 1
	}
	f := searchLatency / coherenceS
	if f > 1 {
		return 1
	}
	return f
}

// FixedBeamSNRdB is the "without OTAM" §9.2 baseline expressed directly:
// the node's Beam 1 carries conventional ASK, so the link SNR is whatever
// Beam 1 alone delivers (core.Evaluation.SNRWithoutOTAM computes the same
// figure inside a Link; this standalone helper serves the benches).
func FixedBeamSNRdB(env *channel.Environment, node, ap channel.Pose, txPowerDBm, implLossDB, bandwidthHz, nfDB float64) float64 {
	beams := antenna.NewNodeBeams()
	apPat := antenna.NewAPAntenna()
	sw := rf.NewADRF5020()
	g := env.Gain(node, beams.Beam1, ap, apPat)
	amp := math.Sqrt(units.FromDBm(txPowerDBm)) * math.Pow(10, -implLossDB/20) * sw.SelectedGain()
	rx := amp * realAbs(g)
	n := units.ThermalNoisePower(bandwidthHz) * units.FromDB(nfDB)
	if rx <= 0 {
		return math.Inf(-1)
	}
	return units.DB(rx * rx / n)
}

func realAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }
