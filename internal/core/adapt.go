package core

import (
	"math"

	"mmx/internal/mac"
	"mmx/internal/modem"
	"mmx/internal/units"
)

// Rate adaptation (§5.1): the node changes its data rate by changing the
// SPDT switching speed, and the AP sizes the matched-filter bandwidth to
// the symbol rate. Slowing down shrinks the noise bandwidth, so a link
// that cannot sustain 100 Mbps still closes at a lower rate — the mmWave
// analogue of WiFi's MCS ladder, with no constellation changes needed.

// RateLadder is the set of symbol rates (= bit rates) a node may use,
// fastest first. The top step is the ADRF5020's 100 MHz toggle ceiling.
var RateLadder = []float64{100e6, 50e6, 25e6, 10e6, 5e6, 2e6, 1e6, 500e3, 100e3}

// RateForSNR returns the fastest ladder rate a link with the given SNR
// (measured in cfgBandwidthHz of noise bandwidth) sustains at the target
// BER, or 0 if even the slowest rate cannot close the link. It is the
// ladder walk of AdaptRate factored out so callers that already hold an
// SNR — e.g. the network simulator's per-step SINR reports — can re-adapt
// without re-enumerating propagation paths.
func RateForSNR(snrDB, cfgBandwidthHz, targetBER float64) float64 {
	required := modem.RequiredSNRForOOKBER(targetBER)
	for _, rate := range RateLadder {
		if snrDB+units.DB(cfgBandwidthHz/mac.BandwidthForRate(rate)) >= required {
			return rate
		}
	}
	return 0
}

// AdaptRate returns the fastest ladder rate whose SNR (at that rate's
// bandwidth) meets the target BER, or 0 if even the slowest rate cannot
// close the link.
func (l *Link) AdaptRate(targetBER float64) float64 {
	ev := l.Evaluate()
	return RateForSNR(ev.SNRWithOTAM, l.Cfg.BandwidthHz, targetBER)
}

// AchievableRate returns the continuous-valued rate (bps, capped at the
// switch ceiling) at which the link exactly meets the target BER —
// useful for plotting rate-vs-distance curves without ladder
// quantization.
func (l *Link) AchievableRate(targetBER float64) float64 {
	ev := l.Evaluate()
	required := modem.RequiredSNRForOOKBER(targetBER)
	// SNR(rate) = SNR(cfgBW) + 10log10(cfgBW / (1.25·rate)) ≥ required
	// ⇒ rate ≤ cfgBW/1.25 · 10^((SNR(cfgBW) − required)/10).
	margin := ev.SNRWithOTAM - required
	rate := l.Cfg.BandwidthHz / 1.25 * math.Pow(10, margin/10)
	if ceiling := RateLadder[0]; rate > ceiling {
		return ceiling
	}
	// Below the allocator's 1 MHz channel floor the bandwidth stops
	// shrinking, so slowing down buys nothing more: if the link cannot
	// close at the floor bandwidth (rate 0.8 Mbps), it cannot close at
	// all.
	if rate < 1e6/1.25 {
		return 0
	}
	return rate
}
