// Command mmx-ap demonstrates the software access point end to end. The
// default scene synthesizes a wideband 250 MS/s capture containing four
// simultaneous camera nodes — FDM channels plus co-channel nodes separated
// by the time-modulated array — and runs the one-pass AP receive pipeline:
// a single polyphase filterbank sweep yields every node's baseband (TMA
// harmonic shifts composed into the channel map), and the per-channel
// stream demodulators fan out across a worker pool.
//
// The -fdm N mode scales the same pipeline sideways: N simultaneous FDM
// nodes on a 1 MHz grid across the whole digitized band, demultiplexed in
// one pass. -legacy runs the per-channel reference path (full-band shift,
// mix, FIR, decimate for every node) for output parity and timing
// comparison.
//
// Usage:
//
//	mmx-ap
//	mmx-ap -seed 7 -legacy
//	mmx-ap -fdm 200
//	mmx-ap -fdm 200 -legacy
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"mmx/internal/apdsp"
	"mmx/internal/dsp"
	"mmx/internal/modem"
	"mmx/internal/stats"
	"mmx/internal/tma"
	"mmx/internal/units"
)

const (
	wideRate = 250e6
	chanRate = 25e6
	symRate  = 1e6
	fskSplit = 500e3
	fpHz     = 25e6 // TMA switching rate
	sdmBins  = 50   // filterbank grid for the SDM scene: 5 MHz bins
)

func main() {
	seed := flag.Uint64("seed", 1, "noise seed")
	legacy := flag.Bool("legacy", false, "use the per-channel reference path instead of the one-pass filterbank")
	fdm := flag.Int("fdm", 0, "run the N-channel wideband FDM demo (e.g. 200) instead of the SDM scene")
	workers := flag.Int("workers", 0, "demodulation workers (0 = GOMAXPROCS)")
	flag.Parse()
	if *fdm > 0 {
		fdmDemo(*fdm, *seed, *legacy, *workers)
		return
	}
	sdmDemo(*seed, *legacy, *workers)
}

type txNode struct {
	name     string
	payload  string
	channel  float64 // RF Hz
	thetaDeg float64 // angle of arrival at the AP array
	harmonic int     // TMA harmonic the angle hashes onto
	g0, g1   complex128
	pad      int
}

func sdmDemo(seed uint64, legacy bool, workers int) {
	center := units.ISM24GHzCenter
	// The TMA shifts every node by its angle's harmonic (±25 MHz per
	// step), so the AP plans channels such that the post-TMA frequencies
	// C + m·f_p stay disjoint — and, for the filterbank, on the 5 MHz
	// grid: door → −80, yard → −55+50 = −5, hall → +55+25 = +80,
	// gate → +55−25 = +30 MHz.
	nodes := []txNode{
		{"cam-door", "door: person at entrance", center - 80e6, 0, 0, complex(0.10, 0), complex(0.90, 0), 700},
		{"cam-yard", "yard: all quiet", center - 55e6, 30, 2, complex(0.75, 0.1), complex(0.20, 0), 1900},
		{"cam-hall", "hall: motion cleared", center + 55e6, 14.5, 1, complex(0.12, 0), complex(0.88, 0), 400},
		{"cam-gate", "gate: delivery arrived", center + 55e6, -14.5, -1, complex(0.80, 0), complex(0.15, 0), 2600},
	}

	// Build each node's wideband waveform (the VCO sits on its channel).
	arr := tma.NewSDMArray(8, fpHz)
	sep := apdsp.NewSDMSeparator(arr, wideRate)
	var captures []apdsp.NodeCapture
	maxLen := 0
	for _, n := range nodes {
		bits, err := modem.BuildFrame([]byte(n.payload))
		if err != nil {
			panic(err)
		}
		cfg := modem.Config{
			SampleRate: wideRate, SymbolRate: symRate,
			F0: (n.channel - center) - fskSplit/2,
			F1: (n.channel - center) + fskSplit/2,
		}
		x := modem.PadRandomOffset(modem.Synthesize(cfg, bits, n.g0, n.g1), n.pad)
		if len(x) > maxLen {
			maxLen = len(x)
		}
		captures = append(captures, apdsp.NodeCapture{
			Theta:    n.thetaDeg * math.Pi / 180,
			Baseband: x,
		})
	}
	for i := range captures {
		pad := maxLen + 3000 - len(captures[i].Baseband)
		captures[i].Baseband = append(captures[i].Baseband, make([]complex128, pad)...)
	}

	// One antenna chain's worth of samples for the whole band.
	wide := sep.MixSDM(captures)
	dsp.AddNoise(wide, 1e-4, stats.NewRNG(seed))
	fmt.Printf("wideband capture: %d samples at %.0f MS/s (%.2f ms of air)\n\n",
		len(wide), wideRate/1e6, float64(len(wide))/wideRate*1e3)

	cfg := apdsp.ChannelConfig(chanRate, symRate, fskSplit)
	if legacy {
		// Reference path: per (channel, harmonic) slot, shift the whole
		// band, mix, filter, decimate.
		start := time.Now()
		chz := apdsp.NewChannelizer(wideRate, center)
		for _, n := range nodes {
			shifted := sep.Shift(wide, n.harmonic)
			bb, err := chz.Extract(shifted, n.channel, 25e6, chanRate)
			if err != nil {
				fmt.Printf("%-9s extract failed: %v\n", n.name, err)
				continue
			}
			d := modem.NewDemodulator(cfg)
			payload, res, err := d.Receive(bb, len(n.payload))
			if err != nil {
				fmt.Printf("%-9s (%.4f GHz, m=%+d): decode failed: %v\n",
					n.name, n.channel/1e9, n.harmonic, err)
				continue
			}
			fmt.Printf("%-9s (%.4f GHz, m=%+d, %s): %q\n",
				n.name, n.channel/1e9, n.harmonic, res.Mode, payload)
		}
		fmt.Printf("\nlegacy per-channel receive: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// One-pass path: every slot is a filterbank channel; the TMA
	// harmonics are composed into the channel map, so no full-band shift
	// pass remains.
	start := time.Now()
	bank := apdsp.NewFilterBank(wideRate, center, sdmBins)
	bank.SwitchRateHz = fpHz
	plan := make([]apdsp.BankChannel, len(nodes))
	lens := make([]int, len(nodes))
	for i, n := range nodes {
		plan[i] = apdsp.BankChannel{ChannelHz: n.channel, Harmonic: n.harmonic}
		lens[i] = len(n.payload)
	}
	if err := bank.Configure(25e6, chanRate, plan); err != nil {
		panic(err)
	}
	frames, err := bank.ReceiveAll(wide, cfg, lens, workers)
	if err != nil {
		panic(err)
	}
	for i, n := range nodes {
		if len(frames[i]) == 0 {
			fmt.Printf("%-9s (%.4f GHz, m=%+d): no frame\n", n.name, n.channel/1e9, n.harmonic)
			continue
		}
		f := frames[i][0]
		fmt.Printf("%-9s (%.4f GHz, m=%+d, %s): %q\n",
			n.name, n.channel/1e9, n.harmonic, f.Result.Mode, f.Payload)
	}
	fmt.Printf("\none-pass filterbank receive (%d bins): %v\n",
		sdmBins, time.Since(start).Round(time.Millisecond))
}

// fdmDemo fills the digitized band with n simultaneous FDM nodes on a
// 1 MHz grid and demultiplexes them in one filterbank pass — the
// "billions of things" shape: AP receive cost per node amortized to the
// branch MACs plus an FFT bin.
func fdmDemo(n int, seed uint64, legacy bool, workers int) {
	const (
		bins    = 250 // 1 MHz grid across the 250 MHz band
		outRate = 2e6
		width   = 1e6
		sym     = 125e3
		fsk     = 500e3
		// A 1 MHz channel at 250 MS/s needs a sharp prototype: the
		// windowed-sinc transition is ~3.3·fs/taps, so 2751 taps gives
		// ~300 kHz of skirt. The bank pays taps/bins ≈ 11 MACs per branch
		// sample; the legacy path leans on overlap-save to survive it.
		taps = 2751
	)
	if n < 1 || n > 240 {
		fmt.Println("-fdm wants 1..240 channels (1 MHz grid inside the 250 MHz band)")
		return
	}
	center := units.ISM24GHzCenter
	offsets := make([]float64, n)
	for i := range offsets {
		offsets[i] = float64(i-n/2) * 1e6
	}

	// Synthesize every node's frame straight at its wideband offset,
	// fanning nodes across workers (each accumulates a partial band sum).
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	payload := func(i int) []byte { return []byte(fmt.Sprintf("n%03d", i)) }
	frameSamples := modem.FrameBits(4) * int(wideRate/sym)
	capLen := frameSamples + 6000
	partials := make([][]complex128, w)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sum := make([]complex128, capLen)
			for i := g; i < n; i += w {
				bits, err := modem.BuildFrame(payload(i))
				if err != nil {
					panic(err)
				}
				cfg := modem.Config{
					SampleRate: wideRate, SymbolRate: sym,
					F0: offsets[i] - fsk/2, F1: offsets[i] + fsk/2,
				}
				rng := stats.NewRNG(seed + uint64(i)*0x9E3779B97F4A7C15)
				x := modem.PadRandomOffset(
					modem.Synthesize(cfg, bits, complex(0.1, 0), complex(0.9, 0)),
					int(rng.Intn(4000)))
				dsp.Add(sum, x)
			}
			partials[g] = sum
		}(g)
	}
	wg.Wait()
	wide := partials[0]
	for _, p := range partials[1:] {
		dsp.Add(wide, p)
	}
	dsp.AddNoise(wide, 1e-5, stats.NewRNG(seed))
	fmt.Printf("wideband capture: %d samples at %.0f MS/s, %d channels of %.1f MHz (synthesized in %v)\n",
		len(wide), wideRate/1e6, n, width/1e6, time.Since(start).Round(time.Millisecond))

	cfg := apdsp.ChannelConfig(outRate, sym, fsk)
	lens := make([]int, n)
	for i := range lens {
		lens[i] = 4
	}

	decoded := 0
	var bankTime time.Duration
	{
		bank := apdsp.NewFilterBank(wideRate, center, bins)
		bank.Taps = taps
		plan := make([]apdsp.BankChannel, n)
		for i := range plan {
			plan[i] = apdsp.BankChannel{ChannelHz: center + offsets[i]}
		}
		if err := bank.Configure(width, outRate, plan); err != nil {
			panic(err)
		}
		t0 := time.Now()
		frames, err := bank.ReceiveAll(wide, cfg, lens, workers)
		if err != nil {
			panic(err)
		}
		bankTime = time.Since(t0)
		for i, fs := range frames {
			if len(fs) > 0 && string(fs[0].Payload) == string(payload(i)) {
				decoded++
			}
		}
		fmt.Printf("one-pass filterbank (%d bins): decoded %d/%d frames in %v (%.2f ms/channel)\n",
			bins, decoded, n, bankTime.Round(time.Millisecond),
			float64(bankTime.Microseconds())/1e3/float64(n))
	}

	if legacy {
		chz := apdsp.NewChannelizer(wideRate, center)
		chz.Taps = taps
		t0 := time.Now()
		legacyDecoded := 0
		var bb []complex128
		for i := range offsets {
			var err error
			bb, err = chz.ExtractInto(bb, wide, center+offsets[i], width, outRate)
			if err != nil {
				panic(err)
			}
			r := modem.NewStreamReceiver(cfg)
			fs := r.ReceiveAll(bb, 4)
			if len(fs) > 0 && string(fs[0].Payload) == string(payload(i)) {
				legacyDecoded++
			}
		}
		legacyTime := time.Since(t0)
		fmt.Printf("legacy per-channel loop:   decoded %d/%d frames in %v — %.1fx the filterbank's time\n",
			legacyDecoded, n, legacyTime.Round(time.Millisecond),
			float64(legacyTime)/float64(bankTime))
	}
}
