package core

import (
	"math/cmplx"

	"mmx/internal/dsp"
	"mmx/internal/modem"
	"mmx/internal/rf"
	"mmx/internal/stats"
)

// TransmitOTAM synthesizes the AP's received complex baseband capture for
// one frame sent with OTAM: the node's carrier hops between the F0/F1 VCO
// settings and the Beam 0/Beam 1 propagation paths per bit, then receiver
// noise is added at the configured noise floor. padSamples of dead air
// precede the frame (the receiver must synchronize).
func (l *Link) TransmitOTAM(payload []byte, padSamples int, rng *stats.RNG) ([]complex128, error) {
	bits, err := modem.BuildFrame(payload)
	if err != nil {
		return nil, err
	}
	ev := l.Evaluate()
	x := modem.Synthesize(l.Cfg.Modem, bits, ev.G0, ev.G1)
	applyVCOPhaseNoise(x, l.Cfg.Modem.SampleRate, rng)
	x = modem.PadRandomOffset(x, padSamples)
	x = append(x, make([]complex128, l.Cfg.Modem.SamplesPerSymbol())...)
	dsp.AddNoise(x, ev.NoisePowerW, rng)
	return x, nil
}

// applyVCOPhaseNoise rotates the waveform by a free-running oscillator's
// random-walk phase. The node VCO runs open-loop (no PLL — part of why
// the node costs $110); envelope detection and tone discrimination are
// insensitive to it, which this impairment keeps honest.
func applyVCOPhaseNoise(x []complex128, sampleRate float64, rng *stats.RNG) {
	track := rf.NewHMC533().PhaseNoiseTrack(len(x), sampleRate, rng)
	for i := range x {
		x[i] *= cmplx.Rect(1, track[i])
	}
}

// TransmitFixedBeam synthesizes the baseline capture: the node modulates
// ASK-FSK conventionally and radiates everything through Beam 1 (the
// "without OTAM" scenario of §9.2). Bit 1 is full carrier, bit 0 is the
// residual extinction amplitude; both traverse the same Beam 1 channel.
func (l *Link) TransmitFixedBeam(payload []byte, padSamples int, rng *stats.RNG) ([]complex128, error) {
	bits, err := modem.BuildFrame(payload)
	if err != nil {
		return nil, err
	}
	ev := l.Evaluate()
	g1 := ev.G1
	g0 := ev.G1 * complex(l.Cfg.ASKExtinction, 0)
	x := modem.Synthesize(l.Cfg.Modem, bits, g0, g1)
	applyVCOPhaseNoise(x, l.Cfg.Modem.SampleRate, rng)
	x = modem.PadRandomOffset(x, padSamples)
	x = append(x, make([]complex128, l.Cfg.Modem.SamplesPerSymbol())...)
	dsp.AddNoise(x, ev.NoisePowerW, rng)
	return x, nil
}

// Receive demodulates a capture produced by either transmit path and
// returns the recovered payload.
func (l *Link) Receive(x []complex128, payloadLen int) ([]byte, modem.DemodResult, error) {
	d := modem.NewDemodulator(l.Cfg.Modem)
	return d.Receive(x, payloadLen)
}

// MeasureBER Monte-Carlo-estimates the link's bit error rate by sending
// frames of random payload bytes and counting bit errors in the decoded
// frames (sync and inversion handled by the receiver). It returns the
// observed BER over nFrames frames of payloadLen bytes each.
func (l *Link) MeasureBER(nFrames, payloadLen int, useOTAM bool, rng *stats.RNG) float64 {
	totalBits := 0
	errBits := 0
	d := modem.NewDemodulator(l.Cfg.Modem)
	for f := 0; f < nFrames; f++ {
		payload := make([]byte, payloadLen)
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		var x []complex128
		var err error
		if useOTAM {
			x, err = l.TransmitOTAM(payload, rng.Intn(30), rng)
		} else {
			x, err = l.TransmitFixedBeam(payload, rng.Intn(30), rng)
		}
		if err != nil {
			continue
		}
		want, _ := modem.BuildFrame(payload)
		res, err := d.Demodulate(x, len(want))
		totalBits += len(want)
		if err != nil {
			errBits += len(want)
			continue
		}
		errBits += modem.CountBitErrors(res.Bits, want)
	}
	if totalBits == 0 {
		return 1
	}
	return float64(errBits) / float64(totalBits)
}

// Digitize passes a capture through the AP's acquisition chain: block AGC
// scaling into the ADC's range, then 14-bit quantization (the USRP-class
// digitizer of §8.2). Received amplitudes are tens of microvolts-scale in
// √W units — without the AGC a fixed-range converter would zero them.
func Digitize(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	adc := rf.NewUSRPN210()
	dsp.NormalizeRMS(out, adc.FullScale/4) // headroom for ASK peaks
	return adc.QuantizeIQ(out)
}
