// Apartment: a two-room home with a drywall partition — the realistic
// smart-home geometry where the hub cannot see every device. The bedroom
// camera reaches the living-room hub through ~7 dB of drywall plus wall
// reflections; rate adaptation (switch-speed scaling, §5.1) picks each
// device's sustainable bitrate automatically, and an FEC-protected frame
// crosses the wall intact.
package main

import (
	"fmt"
	"log"

	"mmx"
)

func main() {
	// 10 m x 5 m apartment, partition at x=6 with a doorway gap.
	env := mmx.NewEnvironment(10, 5, 21)
	env.AddWall(6, 0, 6, 3.4, mmx.Drywall) // wall; doorway from y=3.4 to 5

	hub := mmx.Pose{X: 1, Y: 2.5, FacingRad: 0}

	devices := []struct {
		name string
		pose mmx.Pose
	}{
		{"living-room TV", mmx.Facing(4.5, 2.5, hub.X, hub.Y)},
		{"kitchen sensor", mmx.Facing(3.0, 4.5, hub.X, hub.Y)},
		{"bedroom camera", mmx.Facing(8.5, 1.0, hub.X, hub.Y)}, // through the wall
		{"doorway camera", mmx.Facing(8.0, 4.2, hub.X, hub.Y)}, // through the doorway
	}

	fmt.Println("per-device link survey (rate adapted to hold BER ≤ 1e-6):")
	for _, d := range devices {
		link := env.NewLink(d.pose, hub)
		q := link.Quality()
		rate := link.AdaptRate(1e-6)
		fmt.Printf("  %-16s SNR %5.1f dB  ->  %s\n",
			d.name, q.SNRdB, formatRate(rate))
	}

	// Push a coded frame through the wall from the bedroom camera.
	bedroom := env.NewLink(devices[2].pose, hub)
	payload := []byte("motion detected in the bedroom")
	capture, err := bedroom.SendCoded(payload)
	if err != nil {
		log.Fatal(err)
	}
	res, corrections, err := bedroom.ReceiveCoded(capture, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthrough-wall coded frame: %q (mode %s, %d bits repaired)\n",
		res.Payload, res.Mode, corrections)

	// Someone walks through the doorway while the cameras stream.
	nw := env.NewNetwork(hub, 33)
	for i, d := range devices {
		demand := 8e6
		if i == 1 {
			demand = 1e5
		}
		if _, err := nw.Join(uint32(i+1), d.pose, demand, mmx.CameraTraffic(8)); err != nil {
			log.Fatal(err)
		}
	}
	env.AddBlocker(6.2, 4.0, -0.3, -0.4)
	stats := nw.Run(3, 0.05, 10)
	fmt.Println("\n3 s with someone walking through the doorway:")
	for i, st := range stats.PerNode {
		fmt.Printf("  %-16s mean SINR %5.1f dB, lost %d/%d frames\n",
			devices[i].name, st.MeanSINRdB, st.FramesLost, st.FramesSent)
	}
	fmt.Printf("aggregate goodput: %.1f Mbps\n", stats.TotalGoodputBps()/1e6)
}

func formatRate(bps float64) string {
	switch {
	case bps >= 1e6:
		return fmt.Sprintf("%.0f Mbps", bps/1e6)
	case bps > 0:
		return fmt.Sprintf("%.0f kbps", bps/1e3)
	default:
		return "no link"
	}
}
