package experiments

import (
	"reflect"
	"sync"
	"testing"

	"mmx/internal/stats"
)

// withWorkers runs fn with the fan-out width pinned, restoring it after.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestRunTrialsOrderAndSeeding(t *testing.T) {
	got := RunTrials(42, 100, func(trial int, rng *stats.RNG) [2]float64 {
		return [2]float64{float64(trial), rng.Uniform(0, 1)}
	})
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, g := range got {
		if g[0] != float64(i) {
			t.Fatalf("result %d carries trial index %.0f", i, g[0])
		}
		if want := TrialRNG(42, i).Uniform(0, 1); g[1] != want {
			t.Errorf("trial %d drew %v, TrialRNG(42,%d) gives %v", i, g[1], i, want)
		}
	}
}

func TestRunTrialsSerialParallelIdentical(t *testing.T) {
	run := func() []float64 {
		return RunTrials(7, 257, func(trial int, rng *stats.RNG) float64 {
			v := 0.0
			for k := 0; k < 10+trial%13; k++ { // uneven per-trial work
				v += rng.Normal(0, 1)
			}
			return v
		})
	}
	var serial, parallel []float64
	withWorkers(t, 1, func() { serial = run() })
	withWorkers(t, 8, func() { parallel = run() })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel RunTrials diverged from serial run")
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if got := RunTrials(1, 0, func(int, *stats.RNG) int { return 1 }); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	got := RunTrials(1, 1, func(trial int, _ *stats.RNG) int { return trial })
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("n=1 returned %v", got)
	}
}

func TestTrialRNGStreamsIndependent(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		v := TrialRNG(99, i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("trials %d and %d opened with the same draw", j, i)
		}
		seen[v] = i
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Errorf("default Workers() = %d", Workers())
	}
}

// TestFigSerialParallelIdentical pins the figure-level reproducibility
// contract: the ported experiments return deep-equal results at any worker
// count (the shared environment is read-only during evaluation).
func TestFigSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var s11, p11 Fig11Result
	var s10, p10 Fig10Result
	withWorkers(t, 1, func() {
		s11 = Fig11(5, 40)
		s10 = Fig10(5, 0.75)
	})
	withWorkers(t, 8, func() {
		p11 = Fig11(5, 40)
		p10 = Fig10(5, 0.75)
	})
	if !reflect.DeepEqual(s11, p11) {
		t.Error("Fig11 parallel run diverged from serial")
	}
	if !reflect.DeepEqual(s10, p10) {
		t.Error("Fig10 parallel run diverged from serial")
	}
}

// TestRunTrialsConcurrentCallers exercises the runner from several
// goroutines at once (as nested experiments do) — meaningful mainly under
// -race.
func TestRunTrialsConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			RunTrials(uint64(g), 50, func(trial int, rng *stats.RNG) float64 {
				return rng.Uniform(0, 1)
			})
		}(g)
	}
	wg.Wait()
}
