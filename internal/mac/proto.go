package mac

import (
	"encoding/binary"
	"errors"
	"math"
)

// The initialization protocol (§4, §7a): before any mmWave transmission, a
// node asks the AP for spectrum over a low-rate side channel (WiFi or
// Bluetooth in the prototype) and receives its channel assignment. This
// happens once; afterwards the node transmits autonomously. The wire
// format is a fixed little-endian layout so the protocol can actually run
// over any byte transport.

// MsgType tags a control message.
type MsgType uint8

// Control message types.
const (
	MsgJoinRequest MsgType = iota + 1
	MsgAssignment
	MsgReject
	MsgRelease
)

// JoinRequest is a node asking for a channel sized to its demand.
type JoinRequest struct {
	NodeID    uint32
	DemandBps float64
}

// AssignmentMsg carries the AP's grant back to the node.
type AssignmentMsg struct {
	NodeID      uint32
	CenterHz    float64
	WidthHz     float64
	FSKOffsetHz float64
}

// ReleaseMsg returns a node's channel to the pool.
type ReleaseMsg struct{ NodeID uint32 }

// RejectMsg tells a node no FDM spectrum is left; Harmonic is the SDM
// harmonic slot it may share instead (negative values allowed), and
// ShareHz the channel it should share.
type RejectMsg struct {
	NodeID  uint32
	ShareHz float64
	// Harmonic is encoded as a signed 8-bit value.
	Harmonic int8
}

// Marshal errors.
var (
	ErrShortMessage = errors.New("mac: message truncated")
	ErrUnknownType  = errors.New("mac: unknown message type")
)

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func readF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Marshal encodes any of the four control messages.
func Marshal(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case JoinRequest:
		b := []byte{byte(MsgJoinRequest)}
		b = binary.LittleEndian.AppendUint32(b, m.NodeID)
		return appendF64(b, m.DemandBps), nil
	case AssignmentMsg:
		b := []byte{byte(MsgAssignment)}
		b = binary.LittleEndian.AppendUint32(b, m.NodeID)
		b = appendF64(b, m.CenterHz)
		b = appendF64(b, m.WidthHz)
		return appendF64(b, m.FSKOffsetHz), nil
	case ReleaseMsg:
		b := []byte{byte(MsgRelease)}
		return binary.LittleEndian.AppendUint32(b, m.NodeID), nil
	case RejectMsg:
		b := []byte{byte(MsgReject)}
		b = binary.LittleEndian.AppendUint32(b, m.NodeID)
		b = appendF64(b, m.ShareHz)
		return append(b, byte(m.Harmonic)), nil
	default:
		return nil, ErrUnknownType
	}
}

// Unmarshal decodes a control message produced by Marshal.
func Unmarshal(b []byte) (any, error) {
	if len(b) < 1 {
		return nil, ErrShortMessage
	}
	switch MsgType(b[0]) {
	case MsgJoinRequest:
		if len(b) < 1+4+8 {
			return nil, ErrShortMessage
		}
		return JoinRequest{
			NodeID:    binary.LittleEndian.Uint32(b[1:]),
			DemandBps: readF64(b[5:]),
		}, nil
	case MsgAssignment:
		if len(b) < 1+4+24 {
			return nil, ErrShortMessage
		}
		return AssignmentMsg{
			NodeID:      binary.LittleEndian.Uint32(b[1:]),
			CenterHz:    readF64(b[5:]),
			WidthHz:     readF64(b[13:]),
			FSKOffsetHz: readF64(b[21:]),
		}, nil
	case MsgRelease:
		if len(b) < 1+4 {
			return nil, ErrShortMessage
		}
		return ReleaseMsg{NodeID: binary.LittleEndian.Uint32(b[1:])}, nil
	case MsgReject:
		if len(b) < 1+4+8+1 {
			return nil, ErrShortMessage
		}
		return RejectMsg{
			NodeID:   binary.LittleEndian.Uint32(b[1:]),
			ShareHz:  readF64(b[5:]),
			Harmonic: int8(b[13]),
		}, nil
	default:
		return nil, ErrUnknownType
	}
}

// Controller is the AP-side handler of the initialization protocol: it
// owns an Allocator and answers JoinRequests with Assignments (or a
// Reject carrying an SDM share slot when FDM is exhausted).
type Controller struct {
	Alloc *Allocator
	// nextHarmonic round-robins SDM slots handed to rejected nodes.
	nextHarmonic int
	// nextShare round-robins which existing channel each overflow node
	// shares, spreading the SDM load across hosts.
	nextShare int
	// MaxHarmonic bounds the SDM slots (± the AP TMA's usable range).
	MaxHarmonic int
}

// NewController builds the AP-side protocol handler over a band.
func NewController(band Band) *Controller {
	return &Controller{Alloc: NewAllocator(band), MaxHarmonic: 4}
}

// Handle processes one encoded control message and returns the encoded
// reply (nil for Release, which has no reply).
func (c *Controller) Handle(raw []byte) ([]byte, error) {
	msg, err := Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case JoinRequest:
		asg, err := c.Alloc.Allocate(m.NodeID, m.DemandBps)
		if err == nil {
			return Marshal(AssignmentMsg{
				NodeID:      m.NodeID,
				CenterHz:    asg.CenterHz,
				WidthHz:     asg.WidthHz,
				FSKOffsetHz: asg.FSKOffsetHz,
			})
		}
		if errors.Is(err, ErrBandFull) {
			// Fall back to SDM: spread overflow nodes across existing
			// channels round-robin, each on a rotating harmonic, so no
			// single channel absorbs all the spatial reuse.
			share := c.Alloc.band.LowHz + BandwidthForRate(m.DemandBps)/2
			if got := c.Alloc.Assignments(); len(got) > 0 {
				share = got[c.nextShare%len(got)].CenterHz
				c.nextShare++
			}
			h := c.nextHarmonic%c.MaxHarmonic + 1
			if c.nextHarmonic%2 == 1 {
				h = -h
			}
			c.nextHarmonic++
			return Marshal(RejectMsg{NodeID: m.NodeID, ShareHz: share, Harmonic: int8(h)})
		}
		return nil, err
	case ReleaseMsg:
		// Releasing an unknown node is a no-op, matching how APs treat
		// stale releases.
		_ = c.Alloc.Release(m.NodeID)
		return nil, nil
	default:
		return nil, ErrUnknownType
	}
}
